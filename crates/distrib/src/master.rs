//! The master process side: spawns the worker fleet, drives the superstep
//! barrier, coordinates checkpoints, and restarts the fleet from the last
//! complete checkpoint when a worker process dies.

use std::io::{self, BufRead, BufReader};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;
// lint:allow(determinism-time): socket timeouts bound the wait for lost workers
use std::time::Duration;

use graphalytics_algos::Algorithm;
use graphalytics_core::faults::{CheckpointCodec, FaultPlan, FaultSite, RecoveryAction};
use graphalytics_core::platform::{PlatformError, RunContext};

use crate::partition::PartitionPlan;
use crate::protocol::{decode_blob, read_frame, write_frame, Frame, PlanFrame, StepReport};
use crate::telemetry::TelemetryMerger;
use crate::worker::io_timeout;

/// Master-side configuration for one distributed run.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Worker process count.
    pub workers: u32,
    /// Checkpoint every N supersteps (`None` never checkpoints — and a
    /// worker loss then fails the run, as in the in-process engine).
    pub checkpoint_interval: Option<u64>,
    /// Hard superstep cap.
    pub max_supersteps: u64,
    /// Fleet restarts allowed before a worker loss escalates.
    pub max_restarts: u32,
    /// Path of the `gx-distrib-worker` binary.
    pub worker_bin: PathBuf,
    /// Dataset prefix workers read (`prefix.v` / `prefix.e`).
    pub graph_prefix: PathBuf,
    /// Whether the dataset is directed.
    pub directed: bool,
    /// Whether the edge file carries weights.
    pub weighted: bool,
    /// Directory for checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// Run identifier stamped into the trace context every worker receives
    /// (the driver's per-platform run sequence number).
    pub run_id: u64,
}

/// Fleet-level execution statistics of one coordinated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Supersteps executed (re-executed supersteps count again).
    pub supersteps: u64,
    /// Total messages generated.
    pub messages_total: u64,
    /// Messages that crossed worker processes.
    pub messages_remote: u64,
    /// Real wire bytes: shuffle frames between workers plus control frames
    /// on the master connections.
    pub network_bytes: u64,
    /// Fleet restarts performed (checkpoint recoveries).
    pub restarts: u32,
    /// Telemetry frames received from workers. Zero whenever the master's
    /// tracer is disabled — the differential gate pins this.
    pub telemetry_frames: u64,
}

/// The label every distributed-runtime metric carries.
pub const PLATFORM_LABEL: (&str, &str) = ("platform", "distributed-pregel");

struct Fleet {
    children: Vec<Child>,
    conns: Vec<TcpStream>,
    /// Stderr relay threads, one per worker; joined in [`Fleet::kill`].
    relays: Vec<JoinHandle<()>>,
    /// Fleet-wide runnable-vertex count reported at `Ready`.
    runnable: u64,
    /// Control-plane wire bytes (frames sent and received on the master
    /// connections) since the last [`Fleet::take_control_bytes`].
    control_bytes: u64,
    /// Telemetry frames absorbed off the control connections, awaiting
    /// merge. Deliberately excluded from `control_bytes` so the reported
    /// wire accounting is identical with tracing on or off.
    pending_telemetry: Vec<(u32, u32, Vec<u8>)>,
}

impl Fleet {
    /// Forks `workers` processes, completes the handshake (`Hello` →
    /// `Plan` → `Ready` → `Peers` → `MeshReady`), and returns the
    /// connected fleet.
    fn launch(
        cfg: &MasterConfig,
        algorithm: &Algorithm,
        fault_plan: &FaultPlan,
        incarnation: u32,
        resume: Option<(u64, f64)>,
        ctx: &RunContext,
    ) -> Result<Fleet, PlatformError> {
        let workers = cfg.workers.max(1) as usize;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| PlatformError::TransientIo(format!("bind control: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PlatformError::TransientIo(format!("control addr: {e}")))?;
        let mut children = Vec::with_capacity(workers);
        let mut relays = Vec::with_capacity(workers);
        for w in 0..workers {
            let mut command = Command::new(&cfg.worker_bin);
            command
                .arg(format!("--master={addr}"))
                .arg(format!("--worker={w}"))
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::piped());
            // lint:allow(spawn-audit): forking the worker fleet is the point of this runtime
            let mut child = command.spawn().map_err(|e| {
                PlatformError::Unsupported(format!(
                    "cannot spawn worker binary {}: {e}",
                    cfg.worker_bin.display()
                ))
            })?;
            // Relay the worker's stderr line by line under a `[w<id>:i<inc>]`
            // prefix so interleaved fleet logs stay attributable.
            let stderr = child.stderr.take();
            // lint:allow(spawn-audit): stderr relay thread per worker; exits when the pipe closes
            relays.push(std::thread::spawn(move || {
                if let Some(stderr) = stderr {
                    for line in BufReader::new(stderr).lines() {
                        let Ok(line) = line else { break };
                        eprintln!("[w{w}:i{incarnation}] {line}");
                    }
                }
            }));
            children.push(child);
        }
        let mut fleet = Fleet {
            children,
            conns: Vec::new(),
            relays,
            runnable: 0,
            control_bytes: 0,
            pending_telemetry: Vec::new(),
        };
        // Accept one control connection per worker; identify by Hello.
        let mut conns: Vec<Option<TcpStream>> = (0..workers).map(|_| None).collect();
        listener
            .set_nonblocking(true)
            .map_err(|e| PlatformError::TransientIo(e.to_string()))?;
        let poll = Duration::from_millis(5);
        let mut budget = io_timeout().as_millis() / 5 + 1;
        let mut accepted = 0usize;
        while accepted < workers {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .and_then(|()| stream.set_read_timeout(Some(io_timeout())))
                        .map_err(|e| PlatformError::TransientIo(e.to_string()))?;
                    let mut stream = stream;
                    let frame = fleet.read_from(&mut stream).map_err(|e| {
                        fleet.kill();
                        PlatformError::TransientIo(format!("worker hello: {e}"))
                    })?;
                    let w = match frame {
                        Frame::Hello { worker } => worker as usize,
                        other => {
                            fleet.kill();
                            return Err(PlatformError::Internal(format!(
                                "expected Hello, got tag {}",
                                other.tag()
                            )));
                        }
                    };
                    if w >= workers || conns[w].is_some() {
                        fleet.kill();
                        return Err(PlatformError::Internal(format!(
                            "unexpected hello from worker {w}"
                        )));
                    }
                    conns[w] = Some(stream);
                    accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    budget = budget.saturating_sub(1);
                    if budget == 0 {
                        fleet.kill();
                        return Err(PlatformError::TransientIo(
                            "timed out waiting for worker fleet to connect".to_string(),
                        ));
                    }
                    std::thread::sleep(poll);
                }
                Err(e) => {
                    fleet.kill();
                    return Err(PlatformError::TransientIo(format!("accept: {e}")));
                }
            }
        }
        fleet.conns = conns.into_iter().flatten().collect();
        // Hand every worker its plan.
        for w in 0..workers {
            let plan = Frame::Plan(PlanFrame {
                worker: w as u32,
                workers: workers as u32,
                algorithm: algorithm.clone(),
                graph_prefix: cfg.graph_prefix.display().to_string(),
                directed: cfg.directed,
                weighted: cfg.weighted,
                checkpoint_dir: cfg.checkpoint_dir.display().to_string(),
                checkpoint_interval: cfg.checkpoint_interval.unwrap_or(0),
                incarnation,
                resume: resume.is_some(),
                resume_superstep: resume.map_or(0, |r| r.0),
                fault_plan: fault_plan.clone(),
                trace: ctx.tracer().enabled(),
                run_id: cfg.run_id,
                clock_origin: ctx.tracer().now_seconds(),
            });
            if let Err(e) = fleet.send_to(w, &plan) {
                fleet.kill();
                return Err(PlatformError::TransientIo(format!("send plan to {w}: {e}")));
            }
        }
        // Collect Ready (peer ports + runnable counts), broadcast the
        // port map, and wait for every worker's mesh.
        let mut ports = vec![0u32; workers];
        for (w, port) in ports.iter_mut().enumerate() {
            match fleet.recv_from(w) {
                Ok(Frame::Ready {
                    peer_port,
                    runnable,
                }) => {
                    *port = peer_port;
                    fleet.runnable += runnable;
                }
                Ok(other) => {
                    fleet.kill();
                    return Err(PlatformError::Internal(format!(
                        "expected Ready from {w}, got tag {}",
                        other.tag()
                    )));
                }
                Err(e) => {
                    fleet.kill();
                    return Err(PlatformError::TransientIo(format!("ready from {w}: {e}")));
                }
            }
        }
        let peers = Frame::Peers { ports };
        for w in 0..workers {
            if let Err(e) = fleet.send_to(w, &peers) {
                fleet.kill();
                return Err(PlatformError::TransientIo(format!(
                    "send peers to {w}: {e}"
                )));
            }
        }
        for w in 0..workers {
            match fleet.recv_from(w) {
                Ok(Frame::MeshReady) => {}
                Ok(other) => {
                    fleet.kill();
                    return Err(PlatformError::Internal(format!(
                        "expected MeshReady from {w}, got tag {}",
                        other.tag()
                    )));
                }
                Err(e) => {
                    fleet.kill();
                    return Err(PlatformError::TransientIo(format!("mesh from {w}: {e}")));
                }
            }
        }
        Ok(fleet)
    }

    fn read_from(&mut self, stream: &mut TcpStream) -> io::Result<Frame> {
        loop {
            let frame = read_frame(stream)?;
            if let Frame::Telemetry {
                worker,
                incarnation,
                spans,
            } = frame
            {
                // Absorbed off the control plane without touching
                // `control_bytes`: telemetry must not perturb the wire
                // accounting a differential (traced vs untraced) run pins.
                self.pending_telemetry.push((worker, incarnation, spans));
                continue;
            }
            self.control_bytes += frame.encode().len() as u64;
            return Ok(frame);
        }
    }

    fn send_to(&mut self, w: usize, frame: &Frame) -> io::Result<()> {
        let n = write_frame(&mut self.conns[w], frame)?;
        self.control_bytes += n as u64;
        Ok(())
    }

    fn recv_from(&mut self, w: usize) -> io::Result<Frame> {
        loop {
            let frame = read_frame(&mut self.conns[w])?;
            if let Frame::Telemetry {
                worker,
                incarnation,
                spans,
            } = frame
            {
                self.pending_telemetry.push((worker, incarnation, spans));
                continue;
            }
            self.control_bytes += frame.encode().len() as u64;
            return Ok(frame);
        }
    }

    fn take_control_bytes(&mut self) -> u64 {
        std::mem::take(&mut self.control_bytes)
    }

    /// First child that has exited, if any, with its exit code.
    fn first_dead(&mut self) -> Option<(u32, Option<i32>)> {
        for (w, child) in self.children.iter_mut().enumerate() {
            if let Ok(Some(status)) = child.try_wait() {
                return Some((w as u32, status.code()));
            }
        }
        None
    }

    /// Kills and reaps every worker process, then joins the stderr relays
    /// (their pipes close when the children die).
    fn kill(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
        }
        for child in &mut self.children {
            let _ = child.wait();
        }
        for relay in self.relays.drain(..) {
            let _ = relay.join();
        }
    }
}

/// What interrupted a barrier collection: the lost worker, or a hard error.
enum Loss {
    Worker(u32),
    Fatal(PlatformError),
}

/// Runs `algorithm` on a fleet of worker processes to completion and
/// returns the merged global state vector (internal-id order — the same
/// vector the in-process engine returns) plus fleet statistics.
///
/// Recovery is a *fleet restart*: when a worker process dies, the fleet is
/// killed, the incarnation counter bumps, and a fresh fleet resumes from
/// the last superstep whose checkpoints all landed. Without a complete
/// checkpoint (or past the restart budget) the loss escalates as
/// [`PlatformError::WorkerLost`].
pub fn coordinate<S: CheckpointCodec + Clone>(
    cfg: &MasterConfig,
    algorithm: &Algorithm,
    fault_plan: &FaultPlan,
    part: &PartitionPlan,
    ctx: &RunContext,
) -> Result<(Vec<S>, MasterStats), PlatformError> {
    let workers = cfg.workers.max(1) as usize;
    let mut stats = MasterStats::default();
    let mut incarnation = 0u32;
    let mut resume: Option<(u64, f64)> = None;
    // One merger across all incarnations: its `(worker, incarnation, seq)`
    // dedup is what keeps a restarted worker's re-shipped spans from
    // double-counting in the merged trace.
    let mut merger = TelemetryMerger::new();
    'fleet: loop {
        ctx.check_deadline()?;
        let mut fleet = Fleet::launch(cfg, algorithm, fault_plan, incarnation, resume, ctx)?;
        let mut superstep = resume.map_or(0, |r| r.0);
        let mut prev_aggregate = resume.map_or(0.0, |r| r.1);
        let mut last_checkpoint = resume;
        let mut runnable = fleet.runnable > 0;
        let outcome: Result<(), Loss> = 'steps: loop {
            if !runnable || superstep >= cfg.max_supersteps {
                break 'steps Ok(());
            }
            if let Err(e) = ctx.check_deadline() {
                break 'steps Err(Loss::Fatal(e));
            }
            let checkpoint = cfg
                .checkpoint_interval
                .is_some_and(|i| i > 0 && superstep.is_multiple_of(i));
            let start = Frame::StartSuperstep {
                superstep,
                prev_aggregate,
                checkpoint,
            };
            for w in 0..workers {
                if let Err(_e) = fleet.send_to(w, &start) {
                    break 'steps Err(Loss::Worker(w as u32));
                }
            }
            if checkpoint {
                let mut total = 0u64;
                let mut lost = None;
                for w in 0..workers {
                    match fleet.recv_from(w) {
                        Ok(Frame::CheckpointDone {
                            superstep: s,
                            bytes,
                        }) if s == superstep => total += bytes,
                        Ok(other) => {
                            break 'steps Err(Loss::Fatal(PlatformError::Internal(format!(
                                "expected CheckpointDone from {w}, got tag {}",
                                other.tag()
                            ))))
                        }
                        Err(_) => {
                            lost = Some(w as u32);
                            break;
                        }
                    }
                }
                if let Some(w) = lost {
                    break 'steps Err(Loss::Worker(w));
                }
                // All N checkpoint files are durable: this superstep is now
                // the fleet's restore point.
                ctx.note_checkpoint(superstep, total as usize);
                last_checkpoint = Some((superstep, prev_aggregate));
            }
            let mut reports: Vec<StepReport> = Vec::with_capacity(workers);
            for w in 0..workers {
                match fleet.recv_from(w) {
                    Ok(Frame::StepDone(r)) if r.superstep == superstep => reports.push(r),
                    Ok(other) => {
                        break 'steps Err(Loss::Fatal(PlatformError::Internal(format!(
                            "expected StepDone from {w}, got tag {}",
                            other.tag()
                        ))))
                    }
                    Err(_) => break 'steps Err(Loss::Worker(w as u32)),
                }
            }
            // Barrier bookkeeping: aggregates fold in worker-id order so
            // the f64 sum is bitwise-identical to the in-process engine's.
            let computed: u64 = reports.iter().map(|r| r.computed).sum();
            let active_after: u64 = reports.iter().map(|r| r.active_after).sum();
            let sent: u64 = reports.iter().map(|r| r.sent).sum();
            let remote: u64 = reports.iter().map(|r| r.sent_remote).sum();
            let shuffle_bytes: u64 = reports.iter().map(|r| r.bytes_sent).sum();
            let step_aggregate: f64 = reports.iter().map(|r| r.aggregate).sum();
            let step_bytes = shuffle_bytes + fleet.take_control_bytes();
            let mut span = ctx.tracer().span("distrib.superstep");
            span.field("superstep", superstep)
                .field("active_vertices", computed)
                .field("messages_sent", sent)
                .field("messages_remote", remote)
                .field("network_bytes", step_bytes)
                .field("aggregate", step_aggregate)
                .field("seq_accesses", computed)
                .field("rand_accesses", sent);
            let span_id = span.id();
            for (w, r) in reports.iter().enumerate() {
                ctx.tracer().event(
                    "distrib.task",
                    span_id,
                    vec![
                        ("worker".to_string(), (w as u64).into()),
                        ("work".to_string(), r.computed.into()),
                        ("messages".to_string(), r.sent.into()),
                    ],
                );
            }
            // Merge the worker spans shipped alongside this barrier under
            // the superstep span, so the fleet timeline nests per superstep.
            drain_telemetry(&mut fleet, &mut merger, ctx, span_id, &mut stats);
            let metrics = ctx.tracer().metrics();
            metrics.inc_counter(
                "graphalytics_network_bytes_total",
                &[PLATFORM_LABEL],
                step_bytes,
            );
            metrics.inc_counter(
                "graphalytics_network_messages_total",
                &[PLATFORM_LABEL],
                remote,
            );
            stats.supersteps += 1;
            stats.messages_total += sent;
            stats.messages_remote += remote;
            stats.network_bytes += step_bytes;
            prev_aggregate = step_aggregate;
            runnable = sent > 0 || active_after > 0;
            superstep += 1;
        };
        match outcome {
            Ok(()) => {
                // Drain final states from every worker.
                let mut per_worker: Vec<Vec<S>> = Vec::with_capacity(workers);
                let mut lost = None;
                for w in 0..workers {
                    if fleet.send_to(w, &Frame::Finish).is_err() {
                        lost = Some(w as u32);
                        break;
                    }
                    match fleet.recv_from(w) {
                        Ok(Frame::Output { worker, states }) if worker as usize == w => {
                            match decode_blob::<Vec<S>>(&states) {
                                Some(v) => per_worker.push(v),
                                None => {
                                    fleet.kill();
                                    return Err(PlatformError::Internal(format!(
                                        "corrupt output blob from worker {w}"
                                    )));
                                }
                            }
                        }
                        Ok(other) => {
                            fleet.kill();
                            return Err(PlatformError::Internal(format!(
                                "expected Output from {w}, got tag {}",
                                other.tag()
                            )));
                        }
                        Err(_) => {
                            lost = Some(w as u32);
                            break;
                        }
                    }
                }
                // Workers flush their remaining spans right before Output;
                // merge that EOF shipment under the caller's current span.
                drain_telemetry(
                    &mut fleet,
                    &mut merger,
                    ctx,
                    ctx.tracer().current_span_id(),
                    &mut stats,
                );
                if let Some(w) = lost {
                    let plan = recover(
                        cfg,
                        fault_plan,
                        &mut fleet,
                        w,
                        superstep,
                        incarnation,
                        last_checkpoint,
                        ctx,
                    )?;
                    incarnation += 1;
                    stats.restarts += 1;
                    resume = Some(plan.resume_from);
                    continue 'fleet;
                }
                stats.network_bytes += fleet.take_control_bytes();
                fleet.kill();
                let merged = part
                    .merge(&per_worker)
                    .ok_or_else(|| PlatformError::Internal("output size mismatch".to_string()))?;
                return Ok((merged, stats));
            }
            Err(Loss::Fatal(e)) => {
                fleet.kill();
                return Err(e);
            }
            Err(Loss::Worker(w)) => {
                // Keep whatever the fleet shipped before the loss — the
                // merger's seq dedup makes a later re-shipment harmless.
                drain_telemetry(
                    &mut fleet,
                    &mut merger,
                    ctx,
                    ctx.tracer().current_span_id(),
                    &mut stats,
                );
                let plan = recover(
                    cfg,
                    fault_plan,
                    &mut fleet,
                    w,
                    superstep,
                    incarnation,
                    last_checkpoint,
                    ctx,
                )?;
                incarnation += 1;
                stats.restarts += 1;
                resume = Some(plan.resume_from);
                continue 'fleet;
            }
        }
    }
}

/// Merges every absorbed Telemetry frame into the run tracer under
/// `parent` and counts the frames into `stats`.
fn drain_telemetry(
    fleet: &mut Fleet,
    merger: &mut TelemetryMerger,
    ctx: &RunContext,
    parent: Option<u64>,
    stats: &mut MasterStats,
) {
    for (worker, incarnation, blob) in std::mem::take(&mut fleet.pending_telemetry) {
        stats.telemetry_frames += 1;
        merger.merge(worker, incarnation, &blob, ctx.tracer(), parent);
    }
}

/// A decided fleet restart: where the next incarnation resumes.
struct RecoveryPlan {
    resume_from: (u64, f64),
}

/// Attributes a worker loss, records the injection and recovery against the
/// run context, and either green-lights a fleet restart or escalates.
#[allow(clippy::too_many_arguments)]
fn recover(
    cfg: &MasterConfig,
    fault_plan: &FaultPlan,
    fleet: &mut Fleet,
    eof_worker: u32,
    superstep: u64,
    incarnation: u32,
    last_checkpoint: Option<(u64, f64)>,
    ctx: &RunContext,
) -> Result<RecoveryPlan, PlatformError> {
    // Attribute the loss. The fault plan is pure, so the master re-derives
    // which worker the plan killed this superstep — scanning worker ids in
    // ascending order, exactly like the in-process engine's probe — and
    // only falls back to observed child exits for unplanned deaths.
    let planned = (0..cfg.workers.max(1)).find(|&w| {
        fault_plan.enabled()
            && fault_plan.decides(&FaultSite::PregelWorker {
                superstep,
                worker: w,
                incarnation,
            })
    });
    let dead = planned
        .or_else(|| fleet.first_dead().map(|(w, _)| w))
        .unwrap_or(eof_worker);
    let site = FaultSite::PregelWorker {
        superstep,
        worker: dead,
        incarnation,
    };
    // Record the injection (the injector's log is the seed-stability
    // evidence); for a planned site this returns the transient error the
    // plan dictates, which recovery absorbs.
    let injected_err = ctx.inject(site.clone()).err();
    fleet.kill();
    match last_checkpoint {
        Some(resume_from) if incarnation < cfg.max_restarts => {
            ctx.note_recovery(RecoveryAction::CheckpointRestart, Some(site), 0);
            Ok(RecoveryPlan { resume_from })
        }
        _ => Err(injected_err.unwrap_or(PlatformError::WorkerLost {
            worker: dead,
            superstep: superstep as usize,
        })),
    }
}
