//! The worker process: owns one partition, exchanges shuffle batches with
//! its peers, and reports superstep results to the master.
//!
//! A worker's compute phase is [`compute_partition`] — the *same function*
//! the in-process engine runs in its worker threads — over global-length
//! state buffers restricted to the worker's partition list. Incoming
//! shuffle batches are applied in sender-worker-id order, which reproduces
//! the in-process barrier's message-routing order exactly; together these
//! make a distributed run's output byte-identical to a single-process run
//! with the same worker count.

use std::fs;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
// lint:allow(determinism-time): socket read timeouts bound the wait for lost peers
use std::time::Duration;

use graphalytics_algos::Algorithm;
use graphalytics_core::faults::{FaultSite, Snapshot};
use graphalytics_graph::{io as graph_io, CsrGraph, Vid};
use graphalytics_pregel::programs::{
    BfsProgram, CdProgram, ConnProgram, LccProgram, PageRankProgram, SsspProgram, StatsProgram,
};
use graphalytics_pregel::{compute_partition, VertexProgram};

use crate::partition::PartitionPlan;
use crate::protocol::{decode_blob, encode_blob, read_frame, write_frame, Frame, PlanFrame};
use crate::telemetry::{SpanKind, TelemetryBuffer};

/// Exit code of a worker killed by an injected fault (distinguishes a
/// planned crash from the collateral exits of peers that lost it).
pub const EXIT_INJECTED_FAULT: i32 = 3;

/// Read-timeout for master and peer sockets; a peer silent for this long
/// is treated as lost. Crash detection normally rides the TCP EOF that
/// closing a dead process's sockets produces, so this is only a backstop
/// against hangs.
pub fn io_timeout() -> Duration {
    let secs = std::env::var("GX_DISTRIB_IO_TIMEOUT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(60);
    Duration::from_secs(secs)
}

/// Parsed command line of `gx-distrib-worker`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerArgs {
    /// Master control address, e.g. `127.0.0.1:41234`.
    pub master: String,
    /// This worker's id.
    pub worker: u32,
}

/// Parses `--master=ADDR --worker=N`.
pub fn parse_args(args: &[String]) -> Result<WorkerArgs, String> {
    let mut master = None;
    let mut worker = None;
    for arg in args {
        if let Some(v) = arg.strip_prefix("--master=") {
            master = Some(v.to_string());
        } else if let Some(v) = arg.strip_prefix("--worker=") {
            worker = Some(v.parse::<u32>().map_err(|e| format!("bad --worker: {e}"))?);
        } else {
            return Err(format!("unknown argument {arg}"));
        }
    }
    Ok(WorkerArgs {
        master: master.ok_or("missing --master=ADDR")?,
        worker: worker.ok_or("missing --worker=N")?,
    })
}

/// Worker entry point: connect to the master, receive the plan, load the
/// dataset, and run supersteps until told to finish.
pub fn worker_main(args: &[String]) -> Result<(), String> {
    let args = parse_args(args)?;
    let mut master =
        TcpStream::connect(&args.master).map_err(|e| format!("connect {}: {e}", args.master))?;
    master
        .set_read_timeout(Some(io_timeout()))
        .map_err(|e| e.to_string())?;
    write_frame(
        &mut master,
        &Frame::Hello {
            worker: args.worker,
        },
    )
    .map_err(|e| format!("hello: {e}"))?;
    let plan = match read_frame(&mut master).map_err(|e| format!("plan: {e}"))? {
        Frame::Plan(p) => p,
        other => return Err(format!("expected Plan, got tag {}", other.tag())),
    };
    if plan.worker != args.worker {
        return Err(format!(
            "plan addressed to worker {}, I am {}",
            plan.worker, args.worker
        ));
    }
    let prefix = PathBuf::from(&plan.graph_prefix);
    let edge_list = if plan.weighted {
        graph_io::read_weighted_graph(&prefix, plan.directed)
    } else {
        graph_io::read_graph(&prefix, plan.directed)
    }
    .map_err(|e| format!("read graph {}: {e:?}", prefix.display()))?;
    let graph = CsrGraph::from_edge_list(&edge_list);
    match plan.algorithm.clone() {
        Algorithm::Stats => run_program(&StatsProgram, &graph, &plan, master),
        Algorithm::Bfs { source } => run_program(
            &BfsProgram {
                source: graph.internal_id(source),
            },
            &graph,
            &plan,
            master,
        ),
        Algorithm::Conn => run_program(&ConnProgram, &graph, &plan, master),
        Algorithm::Cd {
            iterations,
            hop_attenuation,
            degree_exponent,
        } => run_program(
            &CdProgram {
                iterations,
                hop_attenuation,
                degree_exponent,
            },
            &graph,
            &plan,
            master,
        ),
        Algorithm::Evo { .. } => Err("EVO is coordinator-driven; workers never run it".to_string()),
        Algorithm::PageRank {
            iterations,
            damping,
        } => run_program(
            &PageRankProgram {
                iterations,
                damping,
            },
            &graph,
            &plan,
            master,
        ),
        Algorithm::Sssp { source } => run_program(
            &SsspProgram {
                source: graph.internal_id(source),
            },
            &graph,
            &plan,
            master,
        ),
        Algorithm::Lcc => run_program(&LccProgram, &graph, &plan, master),
    }
}

fn checkpoint_path(dir: &Path, worker: u32, superstep: u64) -> PathBuf {
    dir.join(format!("worker-{worker}.s{superstep}.ckpt"))
}

/// Per-sender shuffle slots for one superstep: `None` until that sender's
/// batch arrives (own batch is placed immediately).
type ShuffleSlots<M> = Vec<Option<Vec<(Vid, M)>>>;

/// The generic worker loop for one vertex program.
fn run_program<P: VertexProgram>(
    program: &P,
    graph: &CsrGraph,
    plan: &PlanFrame,
    mut master: TcpStream,
) -> Result<(), String> {
    let me = plan.worker as usize;
    let workers = plan.workers as usize;
    // Span buffer on the fleet logical clock (the master's tracer epoch,
    // anchored by the Plan frame's clock origin). Disabled when the master
    // runs untraced — then no Telemetry frame ever leaves this process.
    let mut telemetry = TelemetryBuffer::new(plan.trace, plan.clock_origin);
    let n = graph.num_vertices();
    let part = PartitionPlan::new(graph, workers);
    let mine: &[Vid] = &part.worker_vertices[me];

    // Global-length buffers; only this worker's entries are authoritative.
    let mut states: Vec<P::State> = (0..n as Vid).map(|v| program.init(v, graph)).collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut inbox: Vec<Vec<P::Message>> = vec![Vec::new(); n];

    if plan.resume {
        let path = checkpoint_path(
            Path::new(&plan.checkpoint_dir),
            plan.worker,
            plan.resume_superstep,
        );
        let bytes =
            fs::read(&path).map_err(|e| format!("read checkpoint {}: {e}", path.display()))?;
        let snap: Snapshot<P::State, P::Message> = Snapshot::decode(&bytes)
            .ok_or_else(|| format!("corrupt checkpoint {}", path.display()))?;
        if snap.superstep != plan.resume_superstep
            || snap.states.len() != mine.len()
            || snap.active.len() != mine.len()
            || snap.inbox.len() != mine.len()
        {
            return Err(format!("checkpoint {} does not match plan", path.display()));
        }
        for (i, &v) in mine.iter().enumerate() {
            states[v as usize] = snap.states[i].clone();
            active[v as usize] = snap.active[i];
            inbox[v as usize] = snap.inbox[i].clone();
        }
    }

    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind peer: {e}"))?;
    let peer_port = listener.local_addr().map_err(|e| e.to_string())?.port() as u32;
    let runnable = mine
        .iter()
        .filter(|&&v| active[v as usize] || !inbox[v as usize].is_empty())
        .count() as u64;
    write_frame(
        &mut master,
        &Frame::Ready {
            peer_port,
            runnable,
        },
    )
    .map_err(|e| format!("ready: {e}"))?;

    let ports = match read_frame(&mut master).map_err(|e| format!("peers: {e}"))? {
        Frame::Peers { ports } => ports,
        other => return Err(format!("expected Peers, got tag {}", other.tag())),
    };
    if ports.len() != workers {
        return Err(format!(
            "got {} peer ports for {workers} workers",
            ports.len()
        ));
    }

    // Full peer mesh: dial lower-numbered workers, accept higher-numbered
    // ones. Both sides run this concurrently, so no ordering deadlock.
    let mut peers: Vec<Option<TcpStream>> = (0..workers).map(|_| None).collect();
    for (j, &port) in ports.iter().enumerate().take(me) {
        let mut stream = TcpStream::connect(("127.0.0.1", port as u16))
            .map_err(|e| format!("dial peer {j}: {e}"))?;
        stream
            .set_read_timeout(Some(io_timeout()))
            .map_err(|e| e.to_string())?;
        write_frame(&mut stream, &Frame::PeerHello { from: plan.worker })
            .map_err(|e| format!("peer hello to {j}: {e}"))?;
        peers[j] = Some(stream);
    }
    for _ in me + 1..workers {
        let (mut stream, _) = listener.accept().map_err(|e| format!("accept peer: {e}"))?;
        stream
            .set_read_timeout(Some(io_timeout()))
            .map_err(|e| e.to_string())?;
        let from = match read_frame(&mut stream).map_err(|e| format!("peer hello: {e}"))? {
            Frame::PeerHello { from } => from as usize,
            other => return Err(format!("expected PeerHello, got tag {}", other.tag())),
        };
        if from <= me || from >= workers || peers[from].is_some() {
            return Err(format!("unexpected peer hello from {from}"));
        }
        peers[from] = Some(stream);
    }
    write_frame(&mut master, &Frame::MeshReady).map_err(|e| format!("mesh ready: {e}"))?;

    let combiner = program.combiner();
    loop {
        let frame = read_frame(&mut master).map_err(|e| format!("await superstep: {e}"))?;
        // The master answered: the barrier wait that began after the last
        // StepDone (if any) ends now.
        telemetry.finish_barrier();
        match frame {
            Frame::StartSuperstep {
                superstep,
                prev_aggregate,
                checkpoint,
            } => {
                if checkpoint {
                    let ckpt_start = telemetry.now();
                    let snap = Snapshot {
                        superstep,
                        states: part.gather(me, &states),
                        inbox: part.gather(me, &inbox),
                        active: part.gather(me, &active),
                        aggregate: prev_aggregate,
                    };
                    let bytes = snap.encode();
                    let dir = Path::new(&plan.checkpoint_dir);
                    fs::create_dir_all(dir).map_err(|e| format!("checkpoint dir: {e}"))?;
                    let path = checkpoint_path(dir, plan.worker, superstep);
                    let tmp = path.with_extension("ckpt.tmp");
                    let mut file =
                        fs::File::create(&tmp).map_err(|e| format!("checkpoint tmp: {e}"))?;
                    file.write_all(&bytes)
                        .and_then(|()| file.sync_all())
                        .map_err(|e| format!("checkpoint write: {e}"))?;
                    drop(file);
                    fs::rename(&tmp, &path).map_err(|e| format!("checkpoint rename: {e}"))?;
                    telemetry.record(
                        SpanKind::Checkpoint,
                        superstep,
                        ckpt_start,
                        telemetry.now(),
                        bytes.len() as u64,
                    );
                    write_frame(
                        &mut master,
                        &Frame::CheckpointDone {
                            superstep,
                            bytes: bytes.len() as u64,
                        },
                    )
                    .map_err(|e| format!("checkpoint done: {e}"))?;
                }
                // Fault-plan probe: a planned crash at this (superstep,
                // worker, incarnation) site kills the *process* — the real
                // failure mode, not a simulated one. Probed after the
                // checkpoint so a crash with a due checkpoint restores to
                // this superstep, exactly like the in-process engine.
                if plan.fault_plan.enabled()
                    && plan.fault_plan.decides(&FaultSite::PregelWorker {
                        superstep,
                        worker: plan.worker,
                        incarnation: plan.incarnation,
                    })
                {
                    std::process::exit(EXIT_INJECTED_FAULT);
                }
                let compute_start = telemetry.now();
                let out = compute_partition(
                    graph,
                    program,
                    superstep as usize,
                    prev_aggregate,
                    mine,
                    &states,
                    &active,
                    &inbox,
                );
                telemetry.record(
                    SpanKind::Compute,
                    superstep,
                    compute_start,
                    telemetry.now(),
                    out.active_count as u64,
                );

                // Split outgoing messages by destination owner, preserving
                // generation order within each batch.
                let mut batches: Vec<Vec<(Vid, P::Message)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (to, msg) in out.outgoing {
                    batches[part.owner[to as usize] as usize].push((to, msg));
                }
                let sent = out.messages as u64;
                let sent_remote = batches
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != me)
                    .map(|(_, b)| b.len() as u64)
                    .sum::<u64>();

                // Shuffle: one frame to every peer (even when empty, so
                // receives can't starve), written from per-peer threads so
                // a send can never deadlock against a peer that is also
                // mid-send; receives run on this thread.
                let shuffle_start = telemetry.now();
                let mut bytes_sent = 0u64;
                let mut incoming: ShuffleSlots<P::Message> = (0..workers).map(|_| None).collect();
                incoming[me] = Some(std::mem::take(&mut batches[me]));
                let send_result: Result<u64, String> = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (j, batch) in batches.iter().enumerate() {
                        if j == me {
                            continue;
                        }
                        let mut writer = peers[j]
                            .as_ref()
                            .ok_or_else(|| format!("no peer stream {j}"))?
                            .try_clone()
                            .map_err(|e| format!("clone peer {j}: {e}"))?;
                        let frame = Frame::Shuffle {
                            from: plan.worker,
                            superstep,
                            batch: encode_blob(batch),
                        };
                        // lint:allow(spawn-audit): scoped per-peer writer threads prevent shuffle write-write deadlock
                        handles.push(scope.spawn(move || {
                            write_frame(&mut writer, &frame)
                                .map(|b| b as u64)
                                .map_err(|e| format!("shuffle to {j}: {e}"))
                        }));
                    }
                    // Receive one batch from every peer while the writers run.
                    for (j, peer) in peers.iter_mut().enumerate() {
                        if j == me {
                            continue;
                        }
                        let stream = peer.as_mut().ok_or_else(|| format!("no peer stream {j}"))?;
                        match read_frame(stream).map_err(|e| format!("shuffle from {j}: {e}"))? {
                            Frame::Shuffle {
                                from,
                                superstep: step,
                                batch,
                            } => {
                                if from as usize != j || step != superstep {
                                    return Err(format!(
                                        "misrouted shuffle: from={from} step={step} on stream {j}"
                                    ));
                                }
                                incoming[j] = Some(
                                    decode_blob::<Vec<(Vid, P::Message)>>(&batch)
                                        .ok_or_else(|| format!("corrupt shuffle from {j}"))?,
                                );
                            }
                            other => {
                                return Err(format!(
                                    "expected Shuffle from {j}, got tag {}",
                                    other.tag()
                                ))
                            }
                        }
                    }
                    let mut total = 0u64;
                    for h in handles {
                        total += h
                            .join()
                            .map_err(|_| "shuffle writer panicked".to_string())??;
                    }
                    Ok(total)
                });
                bytes_sent += send_result?;
                telemetry.record(
                    SpanKind::Shuffle,
                    superstep,
                    shuffle_start,
                    telemetry.now(),
                    bytes_sent,
                );

                // Barrier: clear inboxes, apply this worker's updates, then
                // deliver batches in sender-worker-id order — the exact
                // routing order of the in-process barrier, so combiner
                // folds and message-list order match bit for bit.
                for b in inbox.iter_mut() {
                    b.clear();
                }
                for (v, state, stay_active) in out.updates {
                    states[v as usize] = state;
                    active[v as usize] = stay_active;
                }
                for (w, slot) in incoming.iter_mut().enumerate() {
                    let batch = slot
                        .take()
                        .ok_or_else(|| format!("missing shuffle batch from {w}"))?;
                    for (to, msg) in batch {
                        let slot = &mut inbox[to as usize];
                        match (combiner, slot.last_mut()) {
                            (Some(combine), Some(acc)) => combine(acc, msg),
                            _ => slot.push(msg),
                        }
                    }
                }
                let active_after = mine
                    .iter()
                    .filter(|&&v| active[v as usize] || !inbox[v as usize].is_empty())
                    .count() as u64;
                // Ship this superstep's spans piggybacked on the barrier:
                // the Telemetry frame (if any) travels just ahead of the
                // StepDone the master is blocked on.
                if let Some(frame) = telemetry.take_frame(plan.worker, plan.incarnation) {
                    write_frame(&mut master, &frame).map_err(|e| format!("telemetry: {e}"))?;
                }
                write_frame(
                    &mut master,
                    &Frame::StepDone(crate::protocol::StepReport {
                        superstep,
                        computed: out.active_count as u64,
                        active_after,
                        sent,
                        sent_remote,
                        bytes_sent,
                        aggregate: out.aggregate,
                    }),
                )
                .map_err(|e| format!("step done: {e}"))?;
                telemetry.start_barrier(superstep);
            }
            Frame::Finish => {
                // EOF flush: the final barrier wait (closed above) has not
                // shipped yet — send it before the Output frame.
                if let Some(frame) = telemetry.take_frame(plan.worker, plan.incarnation) {
                    write_frame(&mut master, &frame).map_err(|e| format!("telemetry: {e}"))?;
                }
                let blob = encode_blob(&part.gather(me, &states));
                write_frame(
                    &mut master,
                    &Frame::Output {
                        worker: plan.worker,
                        states: blob,
                    },
                )
                .map_err(|e| format!("output: {e}"))?;
                return Ok(());
            }
            other => return Err(format!("unexpected frame tag {} from master", other.tag())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_and_reject() {
        let ok =
            parse_args(&["--master=127.0.0.1:9".to_string(), "--worker=2".to_string()]).unwrap();
        assert_eq!(
            ok,
            WorkerArgs {
                master: "127.0.0.1:9".to_string(),
                worker: 2
            }
        );
        assert!(parse_args(&["--worker=1".to_string()]).is_err());
        assert!(parse_args(&["--master=x".to_string()]).is_err());
        assert!(parse_args(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn checkpoint_paths_are_per_worker_per_superstep() {
        let dir = Path::new("/tmp/ck");
        assert_eq!(
            checkpoint_path(dir, 3, 12),
            PathBuf::from("/tmp/ck/worker-3.s12.ckpt")
        );
        assert_ne!(checkpoint_path(dir, 3, 12), checkpoint_path(dir, 3, 8));
        assert_ne!(checkpoint_path(dir, 3, 12), checkpoint_path(dir, 2, 12));
    }
}
