//! Deterministic vertex→worker assignment for the distributed runtime.
//!
//! Master and workers each compute the same plan independently from the
//! shared dataset (hash of the external vertex id, the Giraph default), so
//! no assignment ever travels the wire. The merge step reassembles
//! per-worker output vectors into global internal-id order — the exact
//! inverse of the scatter, so a distributed run's output vector is
//! byte-comparable with the in-process engine's.

use graphalytics_graph::partition::{HashPartitioner, Partitioner};
use graphalytics_graph::{CsrGraph, Vid};

/// The fleet-wide placement of every vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// `owner[v]` is the worker that owns internal vertex `v`.
    pub owner: Vec<u32>,
    /// Per worker, its vertices in ascending internal-id order (the
    /// compute iteration order, identical to the in-process engine).
    pub worker_vertices: Vec<Vec<Vid>>,
}

impl PartitionPlan {
    /// Hash-partitions `graph` over `workers` workers (Giraph's default
    /// placement); pure function of the graph and the worker count.
    pub fn new(graph: &CsrGraph, workers: usize) -> Self {
        let workers = workers.max(1);
        let owner = HashPartitioner.partition(graph, workers);
        let mut worker_vertices: Vec<Vec<Vid>> = vec![Vec::new(); workers];
        for (v, &w) in owner.iter().enumerate() {
            worker_vertices[w as usize].push(v as Vid);
        }
        Self {
            owner,
            worker_vertices,
        }
    }

    /// Number of workers in the plan.
    pub fn workers(&self) -> usize {
        self.worker_vertices.len()
    }

    /// Merges per-worker output vectors (each in that worker's
    /// partition-list order) back into one global vector indexed by
    /// internal vertex id. Returns `None` when a worker's vector length
    /// does not match its partition size.
    pub fn merge<S: Clone>(&self, per_worker: &[Vec<S>]) -> Option<Vec<S>> {
        if per_worker.len() != self.worker_vertices.len() {
            return None;
        }
        let n = self.owner.len();
        let mut merged: Vec<Option<S>> = vec![None; n];
        for (w, states) in per_worker.iter().enumerate() {
            let vertices = &self.worker_vertices[w];
            if states.len() != vertices.len() {
                return None;
            }
            for (&v, s) in vertices.iter().zip(states) {
                merged[v as usize] = Some(s.clone());
            }
        }
        merged.into_iter().collect()
    }

    /// Extracts this worker's slice of a global vector, in partition-list
    /// order — the inverse of [`merge`](Self::merge), used when restoring
    /// a checkpoint into global-length buffers.
    pub fn gather<S: Clone>(&self, worker: usize, global: &[S]) -> Vec<S> {
        self.worker_vertices[worker]
            .iter()
            .map(|&v| global[v as usize].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn graph(n: u64) -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeListGraph::new(
            (0..n).collect(),
            (0..n).map(|i| (i, (i + 1) % n)).collect(),
            false,
        ))
    }

    #[test]
    fn plan_is_deterministic_and_total() {
        let g = graph(100);
        let a = PartitionPlan::new(&g, 4);
        let b = PartitionPlan::new(&g, 4);
        assert_eq!(a, b);
        assert_eq!(a.owner.len(), 100);
        let total: usize = a.worker_vertices.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for (w, vs) in a.worker_vertices.iter().enumerate() {
            assert!(vs.windows(2).all(|p| p[0] < p[1]), "sorted partition");
            assert!(vs.iter().all(|&v| a.owner[v as usize] as usize == w));
        }
    }

    #[test]
    fn merge_inverts_gather() {
        let g = graph(37);
        let plan = PartitionPlan::new(&g, 5);
        let global: Vec<u64> = (0..37).map(|v| v * 10).collect();
        let per_worker: Vec<Vec<u64>> = (0..5).map(|w| plan.gather(w, &global)).collect();
        assert_eq!(plan.merge(&per_worker), Some(global));
    }

    #[test]
    fn merge_rejects_length_mismatch() {
        let g = graph(10);
        let plan = PartitionPlan::new(&g, 2);
        let mut per_worker: Vec<Vec<u64>> =
            (0..2).map(|w| plan.gather(w, &vec![0u64; 10])).collect();
        per_worker[1].pop();
        assert_eq!(plan.merge(&per_worker), None);
        assert_eq!(plan.merge(&per_worker[..1].to_vec()), None);
    }

    #[test]
    fn single_worker_owns_everything() {
        let g = graph(8);
        let plan = PartitionPlan::new(&g, 1);
        assert!(plan.owner.iter().all(|&w| w == 0));
        assert_eq!(plan.worker_vertices[0].len(), 8);
    }
}
