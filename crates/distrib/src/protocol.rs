//! Framed wire protocol for the distributed Pregel runtime.
//!
//! Every frame on a master↔worker or worker↔worker TCP connection is:
//!
//! ```text
//! magic   u32 LE   0x4758_4450 ("GXDP")
//! version u32 LE   2
//! tag     u8       frame type (see [`Frame`])
//! length  u64 LE   payload byte count
//! crc     u32 LE   CRC-32 (IEEE) of the payload
//! payload [u8]     fields encoded with the checkpoint codec (LE, fixed width)
//! ```
//!
//! The payload reuses [`CheckpointCodec`] — the same little-endian
//! fixed-width encoding the fault-tolerance snapshots use — so vertex
//! states and messages travel the wire exactly as they rest on disk.
//! Decoding rejects wrong magic, unknown versions or tags, CRC mismatches,
//! truncation, and trailing payload bytes.

use graphalytics_algos::Algorithm;
use graphalytics_core::faults::{CheckpointCodec, FaultPlan};
use std::io::{self, Read, Write};

/// Frame magic: `"GXDP"` (GraphalyticX Distributed Pregel).
pub const MAGIC: u32 = 0x4758_4450;
/// Wire protocol version. Bump on any layout change. Version 2 added the
/// trace context to [`PlanFrame`] (`trace`/`run_id`/`clock_origin`) and
/// the [`Frame::Telemetry`] message.
pub const VERSION: u32 = 2;
/// Upper bound on a payload length; larger claims are treated as corrupt
/// framing rather than honored with a giant allocation.
pub const MAX_PAYLOAD: u64 = 1 << 33;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The run plan a master hands each worker right after `Hello`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFrame {
    /// This worker's id (0-based).
    pub worker: u32,
    /// Fleet size.
    pub workers: u32,
    /// The kernel to run.
    pub algorithm: Algorithm,
    /// Dataset path prefix (the worker reads `prefix.v` / `prefix.e`).
    pub graph_prefix: String,
    /// Whether the dataset is directed.
    pub directed: bool,
    /// Whether the edge file carries weights.
    pub weighted: bool,
    /// Directory for checkpoint files.
    pub checkpoint_dir: String,
    /// Checkpoint every N supersteps; 0 disables checkpointing.
    pub checkpoint_interval: u64,
    /// Fleet incarnation (bumped on every checkpoint restart).
    pub incarnation: u32,
    /// Restore local state from the checkpoint at this superstep.
    pub resume: bool,
    /// The superstep to restore when `resume` is set.
    pub resume_superstep: u64,
    /// Fault plan (workers probe their own crash sites).
    pub fault_plan: FaultPlan,
    /// Whether the master's tracer is enabled. Workers buffer and ship
    /// telemetry only when set; a disabled tracer produces zero
    /// [`Frame::Telemetry`] frames (the byte-identity contract).
    pub trace: bool,
    /// Master-side run sequence number, stamped on every shipped span so
    /// fleet traces from different runs are distinguishable.
    pub run_id: u64,
    /// The master tracer's clock reading (seconds since its epoch) at the
    /// moment this plan was encoded. Workers timestamp spans as
    /// `clock_origin + local elapsed since plan receipt`, which puts the
    /// whole fleet on one logical clock.
    pub clock_origin: f64,
}

/// Per-superstep result summary a worker reports at the barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The superstep this report closes.
    pub superstep: u64,
    /// Vertices computed (runnable) this superstep.
    pub computed: u64,
    /// Vertices still active after applying updates.
    pub active_after: u64,
    /// Messages generated.
    pub sent: u64,
    /// Messages whose destination lives on another worker.
    pub sent_remote: u64,
    /// Wire bytes of shuffle frames sent to *other* workers.
    pub bytes_sent: u64,
    /// This worker's aggregator contribution.
    pub aggregate: f64,
}

/// One protocol frame. Tag values are part of the wire format and must
/// never be reused.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → master: first frame on the control connection.
    Hello {
        /// The connecting worker's id.
        worker: u32,
    },
    /// Master → worker: the run plan.
    Plan(PlanFrame),
    /// Worker → master: graph loaded, peer listener bound.
    Ready {
        /// Port of the worker's peer-mesh listener on 127.0.0.1.
        peer_port: u32,
        /// Local runnable-vertex count (active or with pending messages).
        runnable: u64,
    },
    /// Master → worker: peer listener ports, indexed by worker id.
    Peers {
        /// `ports[w]` is worker `w`'s peer listener port.
        ports: Vec<u32>,
    },
    /// Worker → master: all peer connections established.
    MeshReady,
    /// Master → worker: run one superstep.
    StartSuperstep {
        /// Superstep number.
        superstep: u64,
        /// Global aggregate from the previous superstep.
        prev_aggregate: f64,
        /// Write a checkpoint before computing.
        checkpoint: bool,
    },
    /// Worker → master: checkpoint written durably.
    CheckpointDone {
        /// Superstep the checkpoint captures.
        superstep: u64,
        /// Encoded snapshot size.
        bytes: u64,
    },
    /// Worker → master: superstep finished.
    StepDone(StepReport),
    /// Master → worker: send final states and exit.
    Finish,
    /// Worker → master: final vertex states for the worker's partition, in
    /// partition-list order, as a checkpoint-codec blob.
    Output {
        /// Reporting worker.
        worker: u32,
        /// Encoded `Vec<State>`.
        states: Vec<u8>,
    },
    /// Worker → worker: one superstep's message batch.
    Shuffle {
        /// Sending worker.
        from: u32,
        /// Superstep the batch belongs to.
        superstep: u64,
        /// Encoded `Vec<(Vid, Message)>` in generation order.
        batch: Vec<u8>,
    },
    /// Worker → worker: identifies the dialing side of a mesh connection.
    PeerHello {
        /// The dialing worker's id.
        from: u32,
    },
    /// Worker → master: a batch of locally buffered telemetry spans,
    /// piggybacked immediately before `StepDone` (and flushed before
    /// `Output` at EOF). Never sent when the plan's `trace` flag is off.
    Telemetry {
        /// Reporting worker.
        worker: u32,
        /// The worker process's fleet incarnation (spans from distinct
        /// incarnations are distinct lanes, never deduplicated).
        incarnation: u32,
        /// Encoded `Vec<WireSpan>` (see `telemetry::WireSpan`), each
        /// carrying a per-process sequence number for dedup.
        spans: Vec<u8>,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_PLAN: u8 = 2;
const TAG_READY: u8 = 3;
const TAG_PEERS: u8 = 4;
const TAG_MESH_READY: u8 = 5;
const TAG_START_SUPERSTEP: u8 = 6;
const TAG_CHECKPOINT_DONE: u8 = 7;
const TAG_STEP_DONE: u8 = 8;
const TAG_FINISH: u8 = 9;
const TAG_OUTPUT: u8 = 10;
const TAG_SHUFFLE: u8 = 11;
const TAG_PEER_HELLO: u8 = 12;
const TAG_TELEMETRY: u8 = 13;

fn put_bytes(b: &[u8], out: &mut Vec<u8>) {
    (b.len() as u64).encode_into(out);
    out.extend_from_slice(b);
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Option<Vec<u8>> {
    let len = u64::decode_from(buf, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    let b = buf[*pos..end].to_vec();
    *pos = end;
    Some(b)
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    put_bytes(s.as_bytes(), out);
}

fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
    String::from_utf8(get_bytes(buf, pos)?).ok()
}

/// Stable numbered-tag encoding of [`Algorithm`] (tag values are wire
/// format; `usize` parameters travel as `u64`).
pub fn encode_algorithm(alg: &Algorithm, out: &mut Vec<u8>) {
    match alg {
        Algorithm::Stats => 0u8.encode_byte(out),
        Algorithm::Bfs { source } => {
            1u8.encode_byte(out);
            source.encode_into(out);
        }
        Algorithm::Conn => 2u8.encode_byte(out),
        Algorithm::Cd {
            iterations,
            hop_attenuation,
            degree_exponent,
        } => {
            3u8.encode_byte(out);
            (*iterations as u64).encode_into(out);
            hop_attenuation.encode_into(out);
            degree_exponent.encode_into(out);
        }
        Algorithm::Evo {
            new_vertices,
            p_forward,
            max_burst,
            seed,
        } => {
            4u8.encode_byte(out);
            (*new_vertices as u64).encode_into(out);
            p_forward.encode_into(out);
            (*max_burst as u64).encode_into(out);
            seed.encode_into(out);
        }
        Algorithm::PageRank {
            iterations,
            damping,
        } => {
            5u8.encode_byte(out);
            (*iterations as u64).encode_into(out);
            damping.encode_into(out);
        }
        Algorithm::Sssp { source } => {
            6u8.encode_byte(out);
            source.encode_into(out);
        }
        Algorithm::Lcc => 7u8.encode_byte(out),
    }
}

/// Decodes an [`Algorithm`] written by [`encode_algorithm`].
pub fn decode_algorithm(buf: &[u8], pos: &mut usize) -> Option<Algorithm> {
    let tag = take_byte(buf, pos)?;
    Some(match tag {
        0 => Algorithm::Stats,
        1 => Algorithm::Bfs {
            source: u64::decode_from(buf, pos)?,
        },
        2 => Algorithm::Conn,
        3 => Algorithm::Cd {
            iterations: u64::decode_from(buf, pos)? as usize,
            hop_attenuation: f64::decode_from(buf, pos)?,
            degree_exponent: f64::decode_from(buf, pos)?,
        },
        4 => Algorithm::Evo {
            new_vertices: u64::decode_from(buf, pos)? as usize,
            p_forward: f64::decode_from(buf, pos)?,
            max_burst: u64::decode_from(buf, pos)? as usize,
            seed: u64::decode_from(buf, pos)?,
        },
        5 => Algorithm::PageRank {
            iterations: u64::decode_from(buf, pos)? as usize,
            damping: f64::decode_from(buf, pos)?,
        },
        6 => Algorithm::Sssp {
            source: u64::decode_from(buf, pos)?,
        },
        7 => Algorithm::Lcc,
        _ => return None,
    })
}

trait ByteExt {
    fn encode_byte(self, out: &mut Vec<u8>);
}

impl ByteExt for u8 {
    fn encode_byte(self, out: &mut Vec<u8>) {
        out.push(self);
    }
}

fn take_byte(buf: &[u8], pos: &mut usize) -> Option<u8> {
    let b = *buf.get(*pos)?;
    *pos += 1;
    Some(b)
}

impl Frame {
    /// Frame-type tag (wire format).
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Plan(_) => TAG_PLAN,
            Frame::Ready { .. } => TAG_READY,
            Frame::Peers { .. } => TAG_PEERS,
            Frame::MeshReady => TAG_MESH_READY,
            Frame::StartSuperstep { .. } => TAG_START_SUPERSTEP,
            Frame::CheckpointDone { .. } => TAG_CHECKPOINT_DONE,
            Frame::StepDone(_) => TAG_STEP_DONE,
            Frame::Finish => TAG_FINISH,
            Frame::Output { .. } => TAG_OUTPUT,
            Frame::Shuffle { .. } => TAG_SHUFFLE,
            Frame::PeerHello { .. } => TAG_PEER_HELLO,
            Frame::Telemetry { .. } => TAG_TELEMETRY,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { worker } => worker.encode_into(&mut out),
            Frame::Plan(p) => {
                p.worker.encode_into(&mut out);
                p.workers.encode_into(&mut out);
                encode_algorithm(&p.algorithm, &mut out);
                put_str(&p.graph_prefix, &mut out);
                p.directed.encode_into(&mut out);
                p.weighted.encode_into(&mut out);
                put_str(&p.checkpoint_dir, &mut out);
                p.checkpoint_interval.encode_into(&mut out);
                p.incarnation.encode_into(&mut out);
                p.resume.encode_into(&mut out);
                p.resume_superstep.encode_into(&mut out);
                p.fault_plan.encode_into(&mut out);
                p.trace.encode_into(&mut out);
                p.run_id.encode_into(&mut out);
                p.clock_origin.encode_into(&mut out);
            }
            Frame::Ready {
                peer_port,
                runnable,
            } => {
                peer_port.encode_into(&mut out);
                runnable.encode_into(&mut out);
            }
            Frame::Peers { ports } => ports.encode_into(&mut out),
            Frame::MeshReady | Frame::Finish => {}
            Frame::StartSuperstep {
                superstep,
                prev_aggregate,
                checkpoint,
            } => {
                superstep.encode_into(&mut out);
                prev_aggregate.encode_into(&mut out);
                checkpoint.encode_into(&mut out);
            }
            Frame::CheckpointDone { superstep, bytes } => {
                superstep.encode_into(&mut out);
                bytes.encode_into(&mut out);
            }
            Frame::StepDone(r) => {
                r.superstep.encode_into(&mut out);
                r.computed.encode_into(&mut out);
                r.active_after.encode_into(&mut out);
                r.sent.encode_into(&mut out);
                r.sent_remote.encode_into(&mut out);
                r.bytes_sent.encode_into(&mut out);
                r.aggregate.encode_into(&mut out);
            }
            Frame::Output { worker, states } => {
                worker.encode_into(&mut out);
                put_bytes(states, &mut out);
            }
            Frame::Shuffle {
                from,
                superstep,
                batch,
            } => {
                from.encode_into(&mut out);
                superstep.encode_into(&mut out);
                put_bytes(batch, &mut out);
            }
            Frame::PeerHello { from } => from.encode_into(&mut out),
            Frame::Telemetry {
                worker,
                incarnation,
                spans,
            } => {
                worker.encode_into(&mut out);
                incarnation.encode_into(&mut out);
                put_bytes(spans, &mut out);
            }
        }
        out
    }

    fn decode_payload(tag: u8, buf: &[u8]) -> Option<Frame> {
        let mut pos = 0usize;
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                worker: u32::decode_from(buf, &mut pos)?,
            },
            TAG_PLAN => Frame::Plan(PlanFrame {
                worker: u32::decode_from(buf, &mut pos)?,
                workers: u32::decode_from(buf, &mut pos)?,
                algorithm: decode_algorithm(buf, &mut pos)?,
                graph_prefix: get_str(buf, &mut pos)?,
                directed: bool::decode_from(buf, &mut pos)?,
                weighted: bool::decode_from(buf, &mut pos)?,
                checkpoint_dir: get_str(buf, &mut pos)?,
                checkpoint_interval: u64::decode_from(buf, &mut pos)?,
                incarnation: u32::decode_from(buf, &mut pos)?,
                resume: bool::decode_from(buf, &mut pos)?,
                resume_superstep: u64::decode_from(buf, &mut pos)?,
                fault_plan: FaultPlan::decode_from(buf, &mut pos)?,
                trace: bool::decode_from(buf, &mut pos)?,
                run_id: u64::decode_from(buf, &mut pos)?,
                clock_origin: f64::decode_from(buf, &mut pos)?,
            }),
            TAG_READY => Frame::Ready {
                peer_port: u32::decode_from(buf, &mut pos)?,
                runnable: u64::decode_from(buf, &mut pos)?,
            },
            TAG_PEERS => Frame::Peers {
                ports: Vec::<u32>::decode_from(buf, &mut pos)?,
            },
            TAG_MESH_READY => Frame::MeshReady,
            TAG_START_SUPERSTEP => Frame::StartSuperstep {
                superstep: u64::decode_from(buf, &mut pos)?,
                prev_aggregate: f64::decode_from(buf, &mut pos)?,
                checkpoint: bool::decode_from(buf, &mut pos)?,
            },
            TAG_CHECKPOINT_DONE => Frame::CheckpointDone {
                superstep: u64::decode_from(buf, &mut pos)?,
                bytes: u64::decode_from(buf, &mut pos)?,
            },
            TAG_STEP_DONE => Frame::StepDone(StepReport {
                superstep: u64::decode_from(buf, &mut pos)?,
                computed: u64::decode_from(buf, &mut pos)?,
                active_after: u64::decode_from(buf, &mut pos)?,
                sent: u64::decode_from(buf, &mut pos)?,
                sent_remote: u64::decode_from(buf, &mut pos)?,
                bytes_sent: u64::decode_from(buf, &mut pos)?,
                aggregate: f64::decode_from(buf, &mut pos)?,
            }),
            TAG_FINISH => Frame::Finish,
            TAG_OUTPUT => Frame::Output {
                worker: u32::decode_from(buf, &mut pos)?,
                states: get_bytes(buf, &mut pos)?,
            },
            TAG_SHUFFLE => Frame::Shuffle {
                from: u32::decode_from(buf, &mut pos)?,
                superstep: u64::decode_from(buf, &mut pos)?,
                batch: get_bytes(buf, &mut pos)?,
            },
            TAG_PEER_HELLO => Frame::PeerHello {
                from: u32::decode_from(buf, &mut pos)?,
            },
            TAG_TELEMETRY => Frame::Telemetry {
                worker: u32::decode_from(buf, &mut pos)?,
                incarnation: u32::decode_from(buf, &mut pos)?,
                spans: get_bytes(buf, &mut pos)?,
            },
            _ => return None,
        };
        if pos != buf.len() {
            return None; // trailing garbage
        }
        Some(frame)
    }

    /// Full wire encoding (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(21 + payload.len());
        MAGIC.encode_into(&mut out);
        VERSION.encode_into(&mut out);
        out.push(self.tag());
        (payload.len() as u64).encode_into(&mut out);
        crc32(&payload).encode_into(&mut out);
        out.extend_from_slice(&payload);
        out
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one frame; returns the number of wire bytes written (the unit the
/// network-volume accounting reports).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<usize> {
    let bytes = frame.encode();
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one frame, verifying magic, version, length, and CRC.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; 21];
    r.read_exact(&mut header)?;
    let mut pos = 0usize;
    let magic = u32::decode_from(&header, &mut pos).ok_or_else(|| bad("short header"))?;
    if magic != MAGIC {
        return Err(bad(format!("bad frame magic {magic:#010x}")));
    }
    let version = u32::decode_from(&header, &mut pos).ok_or_else(|| bad("short header"))?;
    if version != VERSION {
        return Err(bad(format!("unsupported protocol version {version}")));
    }
    let tag = header[pos];
    pos += 1;
    let len = u64::decode_from(&header, &mut pos).ok_or_else(|| bad("short header"))?;
    if len > MAX_PAYLOAD {
        return Err(bad(format!("payload length {len} exceeds limit")));
    }
    let crc = u32::decode_from(&header, &mut pos).ok_or_else(|| bad("short header"))?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(bad("frame CRC mismatch"));
    }
    Frame::decode_payload(tag, &payload)
        .ok_or_else(|| bad(format!("malformed payload for frame tag {tag}")))
}

/// Encodes a typed value (e.g. a `Vec<(Vid, Message)>` shuffle batch or a
/// `Vec<State>` output) to a checkpoint-codec blob.
pub fn encode_blob<T: CheckpointCodec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode_into(&mut out);
    out
}

/// Decodes a blob written by [`encode_blob`], rejecting trailing bytes.
pub fn decode_blob<T: CheckpointCodec>(buf: &[u8]) -> Option<T> {
    let mut pos = 0usize;
    let value = T::decode_from(buf, &mut pos)?;
    if pos != buf.len() {
        return None;
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_core::faults::FaultSite;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { worker: 3 },
            Frame::Plan(PlanFrame {
                worker: 1,
                workers: 4,
                algorithm: Algorithm::Cd {
                    iterations: 10,
                    hop_attenuation: 0.1,
                    degree_exponent: 1.0,
                },
                graph_prefix: "/tmp/gx/graph".to_string(),
                directed: false,
                weighted: true,
                checkpoint_dir: "/tmp/gx/ckpt".to_string(),
                checkpoint_interval: 4,
                incarnation: 2,
                resume: true,
                resume_superstep: 8,
                fault_plan: FaultPlan::seeded(7).force(FaultSite::PregelWorker {
                    superstep: 9,
                    worker: 1,
                    incarnation: 2,
                }),
                trace: true,
                run_id: 41,
                clock_origin: 1.75,
            }),
            Frame::Ready {
                peer_port: 40123,
                runnable: 77,
            },
            Frame::Peers {
                ports: vec![40123, 40124, 40125, 40126],
            },
            Frame::MeshReady,
            Frame::StartSuperstep {
                superstep: 12,
                prev_aggregate: 0.25,
                checkpoint: true,
            },
            Frame::CheckpointDone {
                superstep: 12,
                bytes: 4096,
            },
            Frame::StepDone(StepReport {
                superstep: 12,
                computed: 100,
                active_after: 42,
                sent: 321,
                sent_remote: 200,
                bytes_sent: 9000,
                aggregate: -1.5,
            }),
            Frame::Finish,
            Frame::Output {
                worker: 2,
                states: vec![1, 2, 3, 4],
            },
            Frame::Shuffle {
                from: 0,
                superstep: 3,
                batch: vec![9, 9, 9],
            },
            Frame::PeerHello { from: 1 },
            Frame::Telemetry {
                worker: 1,
                incarnation: 2,
                spans: vec![0xAA, 0xBB, 0xCC],
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let mut cursor = &bytes[..];
            let decoded = read_frame(&mut cursor).expect("decodes");
            assert_eq!(decoded, frame);
            assert!(cursor.is_empty(), "frame fully consumed");
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            let n = write_frame(&mut wire, f).unwrap();
            assert_eq!(n, f.encode().len());
        }
        let mut cursor = &wire[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        assert!(cursor.is_empty());
    }

    /// Golden fixture: the exact wire bytes of a `StartSuperstep` frame.
    /// A layout change (field order, widths, endianness, header shape)
    /// breaks this test — bump [`VERSION`] and regenerate deliberately.
    #[test]
    fn golden_start_superstep_layout_is_pinned() {
        let frame = Frame::StartSuperstep {
            superstep: 7,
            prev_aggregate: 2.5,
            checkpoint: true,
        };
        let expected: Vec<u8> = vec![
            0x50, 0x44, 0x58, 0x47, // magic "GXDP" little-endian
            0x02, 0x00, 0x00, 0x00, // version 2
            0x06, // tag StartSuperstep
            0x11, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // payload length 17
            0xb9, 0x5a, 0x0a, 0x69, // crc32 of payload
            0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // superstep 7
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40, // f64 2.5 bits
            0x01, // checkpoint = true
        ];
        assert_eq!(frame.encode(), expected);
    }

    /// Golden fixture for the `Hello` frame (the version handshake): the
    /// first 9 bytes of every connection are pinned forever.
    #[test]
    fn golden_hello_layout_is_pinned() {
        let frame = Frame::Hello { worker: 2 };
        let expected: Vec<u8> = vec![
            0x50, 0x44, 0x58, 0x47, // magic
            0x02, 0x00, 0x00, 0x00, // version
            0x01, // tag Hello
            0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // payload length 4
            0x97, 0x17, 0x4d, 0x8b, // crc32 of payload
            0x02, 0x00, 0x00, 0x00, // worker 2
        ];
        assert_eq!(frame.encode(), expected);
    }

    /// Golden fixture for the `Telemetry` frame (worker span shipping):
    /// pins the trace-context wire layout introduced in protocol version 2.
    #[test]
    fn golden_telemetry_layout_is_pinned() {
        let frame = Frame::Telemetry {
            worker: 1,
            incarnation: 2,
            spans: vec![0xAA, 0xBB, 0xCC],
        };
        let expected: Vec<u8> = vec![
            0x50, 0x44, 0x58, 0x47, // magic "GXDP" little-endian
            0x02, 0x00, 0x00, 0x00, // version 2
            0x0D, // tag Telemetry
            0x13, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // payload length 19
            0xf9, 0xbf, 0x82, 0x7d, // crc32 of payload
            0x01, 0x00, 0x00, 0x00, // worker 1
            0x02, 0x00, 0x00, 0x00, // incarnation 2
            0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // spans blob length 3
            0xAA, 0xBB, 0xCC, // opaque span bytes
        ];
        assert_eq!(frame.encode(), expected);
    }

    #[test]
    fn corrupt_payload_is_rejected_by_crc() {
        let mut bytes = Frame::Hello { worker: 9 }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let good = Frame::MeshReady.encode();
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0x01;
        assert!(read_frame(&mut &bad_magic[..]).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 0xFE;
        let err = read_frame(&mut &bad_version[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = Frame::MeshReady.encode();
        bytes[8] = 0xEE;
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let bytes = Frame::Ready {
            peer_port: 1,
            runnable: 2,
        }
        .encode();
        for cut in 0..bytes.len() {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        // Hand-build a Finish frame whose payload claims one stray byte.
        let payload = [0u8];
        let mut bytes = Vec::new();
        MAGIC.encode_into(&mut bytes);
        VERSION.encode_into(&mut bytes);
        bytes.push(TAG_FINISH);
        (payload.len() as u64).encode_into(&mut bytes);
        crc32(&payload).encode_into(&mut bytes);
        bytes.extend_from_slice(&payload);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_claim_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        MAGIC.encode_into(&mut bytes);
        VERSION.encode_into(&mut bytes);
        bytes.push(TAG_FINISH);
        u64::MAX.encode_into(&mut bytes);
        0u32.encode_into(&mut bytes);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(err.to_string().contains("length"), "{err}");
    }

    #[test]
    fn all_algorithms_round_trip() {
        let algorithms = vec![
            Algorithm::Stats,
            Algorithm::Bfs { source: 42 },
            Algorithm::Conn,
            Algorithm::Cd {
                iterations: 9,
                hop_attenuation: 0.5,
                degree_exponent: 2.0,
            },
            Algorithm::Evo {
                new_vertices: 64,
                p_forward: 0.3,
                max_burst: 100,
                seed: 1234,
            },
            Algorithm::PageRank {
                iterations: 30,
                damping: 0.85,
            },
            Algorithm::Sssp { source: 7 },
            Algorithm::Lcc,
        ];
        for alg in algorithms {
            let mut buf = Vec::new();
            encode_algorithm(&alg, &mut buf);
            let mut pos = 0usize;
            let decoded = decode_algorithm(&buf, &mut pos).expect("decodes");
            assert_eq!(pos, buf.len());
            assert_eq!(decoded, alg);
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn blob_round_trip_rejects_trailing_bytes() {
        let batch: Vec<(u32, u64)> = vec![(1, 10), (2, 20)];
        let mut blob = encode_blob(&batch);
        assert_eq!(decode_blob::<Vec<(u32, u64)>>(&blob), Some(batch));
        blob.push(0);
        assert_eq!(decode_blob::<Vec<(u32, u64)>>(&blob), None);
    }
}
