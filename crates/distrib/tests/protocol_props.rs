#![recursion_limit = "256"]
//! Property tests for the wire protocol: arbitrary frames round-trip
//! byte-identically, and single-byte corruption anywhere in a frame never
//! yields a successful decode of different content.

use graphalytics_distrib::protocol::{read_frame, write_frame};
use graphalytics_distrib::{Frame, StepReport};
use proptest::prelude::*;

fn roundtrip(frame: &Frame) -> Frame {
    let mut wire = Vec::new();
    write_frame(&mut wire, frame).expect("write");
    read_frame(&mut &wire[..]).expect("read")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn step_reports_round_trip(
        superstep in any::<u64>(),
        computed in any::<u64>(),
        active_after in any::<u64>(),
        sent in any::<u64>(),
        sent_remote in any::<u64>(),
        bytes_sent in any::<u64>(),
        aggregate_bits in any::<i64>(),
    ) {
        let frame = Frame::StepDone(StepReport {
            superstep,
            computed,
            active_after,
            sent,
            sent_remote,
            bytes_sent,
            aggregate: f64::from_bits(aggregate_bits as u64),
        });
        let decoded = roundtrip(&frame);
        // Compare through re-encoding so NaN aggregates (bitwise preserved
        // by the codec but not PartialEq-equal) still verify.
        prop_assert_eq!(decoded.encode(), frame.encode());
    }

    #[test]
    fn peer_lists_round_trip(ports in proptest::collection::vec(any::<u32>(), 0..64)) {
        let frame = Frame::Peers { ports };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn shuffle_blobs_round_trip(
        from in any::<u32>(),
        superstep in any::<u64>(),
        batch in proptest::collection::vec(any::<u64>(), 0..256),
    ) {
        let batch: Vec<u8> = batch.iter().flat_map(|v| v.to_le_bytes()).collect();
        let frame = Frame::Shuffle { from, superstep, batch };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    // Flip one byte anywhere in an encoded frame: the reader must never
    // accept it as a *different* frame — every outcome is either an error
    // or the original (a single flip cannot cancel out).
    #[test]
    fn single_byte_corruption_never_decodes_to_different_content(
        worker in any::<u32>(),
        flip_at in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let frame = Frame::Hello { worker };
        let mut wire = frame.encode();
        let at = (flip_at % wire.len() as u64) as usize;
        wire[at] ^= 1 << flip_bit;
        match read_frame(&mut &wire[..]) {
            Ok(decoded) => prop_assert_eq!(decoded, frame, "corruption at byte {} accepted", at),
            Err(_) => {}
        }
    }
}
