//! End-to-end differential tests: a master + N real worker *processes*
//! must produce byte-identical output to the in-process Pregel engine with
//! the same worker count, for the full LDBC workload.
//!
//! Tests are named `e2e_*` so sanitizer CI jobs (which cannot follow forked
//! processes) can `--skip e2e_`. The graph scale is `GX_DISTRIB_SCALE`
//! (log2 vertices, default 8) so the CI smoke job can climb higher.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use graphalytics_algos::{Algorithm, Output};
use graphalytics_core::faults::FaultPlan;
use graphalytics_core::platform::{Platform, RunContext};
use graphalytics_core::trace::Tracer;
use graphalytics_distrib::{
    coordinate, DistribConfig, DistributedPlatform, MasterConfig, MasterStats, PartitionPlan,
};
use graphalytics_graph::{CsrGraph, EdgeListGraph, WEIGHT_SCALE};
use graphalytics_pregel::{GiraphPlatform, PregelConfig};

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_gx-distrib-worker"))
}

fn scale() -> u32 {
    std::env::var("GX_DISTRIB_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// A deterministic weighted test graph: a ring for connectivity, chords
/// for cycles and triangles, and a hub for degree skew.
fn test_graph() -> Arc<CsrGraph> {
    let n: u64 = 1 << scale();
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((
            i,
            (i + 1) % n,
            WEIGHT_SCALE + (i * 37 % 100) * (WEIGHT_SCALE / 100),
        ));
        edges.push((
            i,
            (i * 7 + 3) % n,
            WEIGHT_SCALE + (i * 13 % 50) * (WEIGHT_SCALE / 100),
        ));
        if i % 16 == 5 {
            edges.push((0, i, 2 * WEIGHT_SCALE));
        }
    }
    Arc::new(CsrGraph::from_edge_list(&EdgeListGraph::new_weighted(
        (0..n).collect(),
        edges,
        false,
    )))
}

fn distrib(workers: u32) -> DistributedPlatform {
    DistributedPlatform::new(DistribConfig {
        workers,
        worker_bin: Some(worker_bin()),
        ..DistribConfig::default()
    })
}

fn giraph(workers: usize) -> GiraphPlatform {
    GiraphPlatform::new(PregelConfig {
        workers,
        ..PregelConfig::default()
    })
}

fn workload() -> Vec<Algorithm> {
    let mut w = Algorithm::ldbc_workload();
    w.push(Algorithm::default_pagerank());
    w
}

fn run_all(platform: &mut dyn Platform, graph: &CsrGraph, ctx: &RunContext) -> Vec<Output> {
    let handle = platform.load_graph(graph).expect("load");
    let outputs = workload()
        .iter()
        .map(|alg| {
            platform
                .run(handle, alg, ctx)
                .unwrap_or_else(|e| panic!("{}: {e:?}", alg.name()))
        })
        .collect();
    platform.unload(handle);
    outputs
}

/// The acceptance differential: master + 4 worker processes vs the
/// in-process engine with 4 worker threads, byte-identical output for all
/// seven LDBC kernels plus PageRank.
#[test]
fn e2e_four_processes_match_in_process_engine() {
    let graph = test_graph();
    let expected = run_all(&mut giraph(4), &graph, &RunContext::unbounded());
    let tracer = Arc::new(Tracer::new());
    let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
    let actual = run_all(&mut distrib(4), &graph, &ctx);
    for ((alg, want), got) in workload().iter().zip(&expected).zip(&actual) {
        assert_eq!(want, got, "{} differs between engines", alg.name());
    }
    // Real network accounting: the distributed run produced superstep spans
    // carrying actual wire-byte counts, and the Prometheus counters moved.
    let spans = tracer.finished_spans();
    let step_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "distrib.superstep")
        .collect();
    assert!(!step_spans.is_empty(), "no distrib.superstep spans");
    let bytes: i64 = step_spans
        .iter()
        .filter_map(|s| s.field("network_bytes").and_then(|f| f.as_i64()))
        .sum();
    assert!(bytes > 0, "no network bytes accounted");
    let rendered = tracer.metrics().render_prometheus();
    assert!(
        rendered.contains("graphalytics_network_bytes_total"),
        "missing network bytes counter:\n{rendered}"
    );
    assert!(
        rendered.contains("graphalytics_network_messages_total"),
        "missing network messages counter:\n{rendered}"
    );
}

/// One worker process (no peers at all) must equal the in-process engine
/// with one worker thread — exercises the degenerate mesh.
#[test]
fn e2e_single_process_matches_in_process_engine() {
    let graph = test_graph();
    let ctx = RunContext::unbounded();
    let expected = run_all(&mut giraph(1), &graph, &ctx);
    let actual = run_all(&mut distrib(1), &graph, &ctx);
    for ((alg, want), got) in workload().iter().zip(&expected).zip(&actual) {
        assert_eq!(want, got, "{} differs between engines", alg.name());
    }
}

/// Worker-count invariance: 1 process vs 4 processes. Integer kernels are
/// byte-identical; floating-point kernels (whose message fold order
/// legitimately depends on the partition count, as in the in-process
/// engine) must still validate as equivalent.
#[test]
fn e2e_one_vs_four_workers_differential() {
    let graph = test_graph();
    let ctx = RunContext::unbounded();
    let one = run_all(&mut distrib(1), &graph, &ctx);
    let four = run_all(&mut distrib(4), &graph, &ctx);
    for ((alg, a), b) in workload().iter().zip(&one).zip(&four) {
        match alg {
            Algorithm::Bfs { .. }
            | Algorithm::Conn
            | Algorithm::Sssp { .. }
            | Algorithm::Evo { .. } => {
                assert_eq!(a, b, "{} not worker-count invariant", alg.name());
            }
            _ => {
                assert!(
                    a.equivalent(b),
                    "{} not equivalent across worker counts: {a:?} vs {b:?}",
                    alg.name()
                );
            }
        }
    }
}

/// The telemetry differential gate. Tracing disabled: the master receives
/// zero `Telemetry` frames and the run's output, superstep count, message
/// totals, and wire-byte accounting are exactly what they were before
/// telemetry existed. Tracing enabled: the output vector is still
/// bit-identical and the wire accounting does not move (telemetry frames
/// are excluded from `network_bytes` by design) — but the merged trace now
/// carries per-process worker lanes, a straggler table, and per-worker
/// Prometheus series.
#[test]
fn e2e_telemetry_is_off_the_output_path() {
    let graph = test_graph();
    let dir = std::env::temp_dir().join(format!("gx-telemetry-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let prefix = dir.join("graph");
    graphalytics_graph::io::write_graph(&graph.to_edge_list(), &prefix).expect("write dataset");
    let part = PartitionPlan::new(&graph, 4);
    // Fixed iteration count: both runs execute the same superstep schedule.
    let alg = Algorithm::PageRank {
        iterations: 6,
        damping: 0.85,
    };
    let plan = FaultPlan::disabled();
    let cfg = |run_id: u64| MasterConfig {
        workers: 4,
        checkpoint_interval: Some(2),
        max_supersteps: 10_000,
        max_restarts: 8,
        worker_bin: worker_bin(),
        graph_prefix: prefix.clone(),
        directed: graph.is_directed(),
        weighted: true,
        checkpoint_dir: dir.join(format!("ckpt-{run_id}")),
        run_id,
    };

    // Disabled tracer: the pre-PR behaviour, frame for frame.
    let (plain, stats_off) =
        coordinate::<f64>(&cfg(1), &alg, &plan, &part, &RunContext::unbounded()).expect("plain");
    assert_eq!(
        stats_off.telemetry_frames, 0,
        "disabled tracing must ship zero telemetry frames"
    );

    // Enabled tracer, under a `run` span so choke-point attribution and
    // the chrome-trace export see the whole fleet subtree.
    let tracer = Arc::new(Tracer::new());
    let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
    let (traced, stats_on) = {
        let mut run = tracer.span("run");
        run.field("platform", "distributed-pregel")
            .field("dataset", "ring")
            .field("algorithm", "PageRank");
        coordinate::<f64>(&cfg(2), &alg, &plan, &part, &ctx).expect("traced")
    };

    // Output is bit-identical with tracing on.
    assert_eq!(plain.len(), traced.len());
    for (i, (a, b)) in plain.iter().zip(&traced).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "rank {i} differs with tracing enabled"
        );
    }
    // Wire accounting is identical: telemetry frames never count.
    assert!(stats_on.telemetry_frames > 0, "no telemetry frames shipped");
    let normalized = MasterStats {
        telemetry_frames: 0,
        ..stats_on.clone()
    };
    assert_eq!(
        normalized, stats_off,
        "tracing changed the run's accounted behaviour"
    );

    // The merged trace has one lane per worker process plus the master.
    let spans = tracer.finished_spans();
    let lanes: BTreeSet<String> = spans
        .iter()
        .filter(|s| s.name.starts_with("distrib.worker."))
        .filter_map(|s| s.field("proc").and_then(|f| f.as_str()).map(str::to_string))
        .collect();
    let want: BTreeSet<String> = ["w0:i0", "w1:i0", "w2:i0", "w3:i0"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(lanes, want, "missing worker lanes");
    assert!(
        spans.iter().any(|s| s.name == "distrib.superstep"),
        "master lane lost its superstep spans"
    );
    let trace = graphalytics_obs::chrome_trace(&spans);
    for name in [
        "graphalytics",
        "worker w0:i0",
        "worker w1:i0",
        "worker w2:i0",
        "worker w3:i0",
    ] {
        assert!(trace.contains(name), "chrome trace missing lane {name}");
    }

    // Straggler attribution: every superstep row covers all four workers.
    let reports = graphalytics_obs::attribute(&spans);
    let report = reports
        .iter()
        .find(|r| r.platform == "distributed-pregel")
        .expect("no distributed run report");
    assert!(!report.stragglers.is_empty(), "no straggler rows");
    for row in &report.stragglers {
        assert_eq!(row.workers, 4, "superstep {} row incomplete", row.superstep);
        assert!(row.slowest_worker < 4);
        assert!((0.0..=1.0).contains(&row.gini));
        assert!(row.max_compute_seconds >= 0.0);
    }

    // Per-worker Prometheus series with the fixed-cardinality worker label.
    let rendered = tracer.metrics().render_prometheus();
    for family in [
        "graphalytics_worker_compute_seconds",
        "graphalytics_worker_barrier_wait_seconds",
        "graphalytics_worker_shuffle_bytes_total",
    ] {
        assert!(rendered.contains(family), "missing {family}:\n{rendered}");
    }
    assert!(
        rendered.contains("worker=\"0\"") && rendered.contains("worker=\"3\""),
        "missing worker label:\n{rendered}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty graph runs without spawning any fleet.
#[test]
fn e2e_empty_graph_short_circuits() {
    let graph = CsrGraph::from_edge_list(&EdgeListGraph::new(vec![], vec![], false));
    let mut p = distrib(4);
    let handle = p.load_graph(&graph).unwrap();
    let out = p
        .run(handle, &Algorithm::Conn, &RunContext::unbounded())
        .unwrap();
    assert_eq!(out, Output::Components(vec![]));
}

/// A missing worker binary is reported as `Unsupported`, not a hang.
#[test]
fn e2e_missing_worker_binary_is_reported() {
    let graph = test_graph();
    let mut p = DistributedPlatform::new(DistribConfig {
        workers: 2,
        worker_bin: Some(PathBuf::from("/nonexistent/gx-distrib-worker")),
        ..DistribConfig::default()
    });
    let handle = p.load_graph(&graph).unwrap();
    let err = p
        .run(handle, &Algorithm::Conn, &RunContext::unbounded())
        .unwrap_err();
    assert!(
        matches!(
            err,
            graphalytics_core::platform::PlatformError::Unsupported(_)
        ),
        "{err:?}"
    );
}
