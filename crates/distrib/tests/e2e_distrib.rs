//! End-to-end differential tests: a master + N real worker *processes*
//! must produce byte-identical output to the in-process Pregel engine with
//! the same worker count, for the full LDBC workload.
//!
//! Tests are named `e2e_*` so sanitizer CI jobs (which cannot follow forked
//! processes) can `--skip e2e_`. The graph scale is `GX_DISTRIB_SCALE`
//! (log2 vertices, default 8) so the CI smoke job can climb higher.

use std::path::PathBuf;
use std::sync::Arc;

use graphalytics_algos::{Algorithm, Output};
use graphalytics_core::platform::{Platform, RunContext};
use graphalytics_core::trace::Tracer;
use graphalytics_distrib::{DistribConfig, DistributedPlatform};
use graphalytics_graph::{CsrGraph, EdgeListGraph, WEIGHT_SCALE};
use graphalytics_pregel::{GiraphPlatform, PregelConfig};

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_gx-distrib-worker"))
}

fn scale() -> u32 {
    std::env::var("GX_DISTRIB_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// A deterministic weighted test graph: a ring for connectivity, chords
/// for cycles and triangles, and a hub for degree skew.
fn test_graph() -> Arc<CsrGraph> {
    let n: u64 = 1 << scale();
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((
            i,
            (i + 1) % n,
            WEIGHT_SCALE + (i * 37 % 100) * (WEIGHT_SCALE / 100),
        ));
        edges.push((
            i,
            (i * 7 + 3) % n,
            WEIGHT_SCALE + (i * 13 % 50) * (WEIGHT_SCALE / 100),
        ));
        if i % 16 == 5 {
            edges.push((0, i, 2 * WEIGHT_SCALE));
        }
    }
    Arc::new(CsrGraph::from_edge_list(&EdgeListGraph::new_weighted(
        (0..n).collect(),
        edges,
        false,
    )))
}

fn distrib(workers: u32) -> DistributedPlatform {
    DistributedPlatform::new(DistribConfig {
        workers,
        worker_bin: Some(worker_bin()),
        ..DistribConfig::default()
    })
}

fn giraph(workers: usize) -> GiraphPlatform {
    GiraphPlatform::new(PregelConfig {
        workers,
        ..PregelConfig::default()
    })
}

fn workload() -> Vec<Algorithm> {
    let mut w = Algorithm::ldbc_workload();
    w.push(Algorithm::default_pagerank());
    w
}

fn run_all(platform: &mut dyn Platform, graph: &CsrGraph, ctx: &RunContext) -> Vec<Output> {
    let handle = platform.load_graph(graph).expect("load");
    let outputs = workload()
        .iter()
        .map(|alg| {
            platform
                .run(handle, alg, ctx)
                .unwrap_or_else(|e| panic!("{}: {e:?}", alg.name()))
        })
        .collect();
    platform.unload(handle);
    outputs
}

/// The acceptance differential: master + 4 worker processes vs the
/// in-process engine with 4 worker threads, byte-identical output for all
/// seven LDBC kernels plus PageRank.
#[test]
fn e2e_four_processes_match_in_process_engine() {
    let graph = test_graph();
    let expected = run_all(&mut giraph(4), &graph, &RunContext::unbounded());
    let tracer = Arc::new(Tracer::new());
    let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
    let actual = run_all(&mut distrib(4), &graph, &ctx);
    for ((alg, want), got) in workload().iter().zip(&expected).zip(&actual) {
        assert_eq!(want, got, "{} differs between engines", alg.name());
    }
    // Real network accounting: the distributed run produced superstep spans
    // carrying actual wire-byte counts, and the Prometheus counters moved.
    let spans = tracer.finished_spans();
    let step_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "distrib.superstep")
        .collect();
    assert!(!step_spans.is_empty(), "no distrib.superstep spans");
    let bytes: i64 = step_spans
        .iter()
        .filter_map(|s| s.field("network_bytes").and_then(|f| f.as_i64()))
        .sum();
    assert!(bytes > 0, "no network bytes accounted");
    let rendered = tracer.metrics().render_prometheus();
    assert!(
        rendered.contains("graphalytics_network_bytes_total"),
        "missing network bytes counter:\n{rendered}"
    );
    assert!(
        rendered.contains("graphalytics_network_messages_total"),
        "missing network messages counter:\n{rendered}"
    );
}

/// One worker process (no peers at all) must equal the in-process engine
/// with one worker thread — exercises the degenerate mesh.
#[test]
fn e2e_single_process_matches_in_process_engine() {
    let graph = test_graph();
    let ctx = RunContext::unbounded();
    let expected = run_all(&mut giraph(1), &graph, &ctx);
    let actual = run_all(&mut distrib(1), &graph, &ctx);
    for ((alg, want), got) in workload().iter().zip(&expected).zip(&actual) {
        assert_eq!(want, got, "{} differs between engines", alg.name());
    }
}

/// Worker-count invariance: 1 process vs 4 processes. Integer kernels are
/// byte-identical; floating-point kernels (whose message fold order
/// legitimately depends on the partition count, as in the in-process
/// engine) must still validate as equivalent.
#[test]
fn e2e_one_vs_four_workers_differential() {
    let graph = test_graph();
    let ctx = RunContext::unbounded();
    let one = run_all(&mut distrib(1), &graph, &ctx);
    let four = run_all(&mut distrib(4), &graph, &ctx);
    for ((alg, a), b) in workload().iter().zip(&one).zip(&four) {
        match alg {
            Algorithm::Bfs { .. }
            | Algorithm::Conn
            | Algorithm::Sssp { .. }
            | Algorithm::Evo { .. } => {
                assert_eq!(a, b, "{} not worker-count invariant", alg.name());
            }
            _ => {
                assert!(
                    a.equivalent(b),
                    "{} not equivalent across worker counts: {a:?} vs {b:?}",
                    alg.name()
                );
            }
        }
    }
}

/// An empty graph runs without spawning any fleet.
#[test]
fn e2e_empty_graph_short_circuits() {
    let graph = CsrGraph::from_edge_list(&EdgeListGraph::new(vec![], vec![], false));
    let mut p = distrib(4);
    let handle = p.load_graph(&graph).unwrap();
    let out = p
        .run(handle, &Algorithm::Conn, &RunContext::unbounded())
        .unwrap();
    assert_eq!(out, Output::Components(vec![]));
}

/// A missing worker binary is reported as `Unsupported`, not a hang.
#[test]
fn e2e_missing_worker_binary_is_reported() {
    let graph = test_graph();
    let mut p = DistributedPlatform::new(DistribConfig {
        workers: 2,
        worker_bin: Some(PathBuf::from("/nonexistent/gx-distrib-worker")),
        ..DistribConfig::default()
    });
    let handle = p.load_graph(&graph).unwrap();
    let err = p
        .run(handle, &Algorithm::Conn, &RunContext::unbounded())
        .unwrap_err();
    assert!(
        matches!(
            err,
            graphalytics_core::platform::PlatformError::Unsupported(_)
        ),
        "{err:?}"
    );
}
