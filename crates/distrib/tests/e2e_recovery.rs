//! Crash-recovery end-to-end tests: a worker *process* is killed
//! mid-superstep by the fault plan; the master restores the fleet from the
//! last complete checkpoint, and the final output is byte-identical to an
//! unfaulted run. Injection and recovery logs are seed-stable run to run.
//!
//! Named `e2e_*` so sanitizer CI jobs can `--skip e2e_`.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use graphalytics_algos::Algorithm;
use graphalytics_core::faults::{FaultInjector, FaultPlan, FaultSite, RecoveryAction};
use graphalytics_core::platform::{Platform, PlatformError, RunContext};
use graphalytics_core::trace::Tracer;
use graphalytics_distrib::{DistribConfig, DistributedPlatform};
use graphalytics_graph::{CsrGraph, EdgeListGraph};

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_gx-distrib-worker"))
}

fn test_graph() -> CsrGraph {
    let n: u64 = 1
        << std::env::var("GX_DISTRIB_SCALE")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(8);
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        edges.push((i, (i * 5 + 2) % n));
    }
    CsrGraph::from_edge_list(&EdgeListGraph::new((0..n).collect(), edges, false))
}

fn platform(checkpoint_interval: Option<u64>) -> DistributedPlatform {
    DistributedPlatform::new(DistribConfig {
        workers: 4,
        checkpoint_interval,
        worker_bin: Some(worker_bin()),
        ..DistribConfig::default()
    })
}

/// PageRank runs a fixed superstep count, so the forced crash site at
/// superstep 3 is always reached.
fn algorithm() -> Algorithm {
    Algorithm::PageRank {
        iterations: 6,
        damping: 0.85,
    }
}

fn crash_plan() -> FaultPlan {
    FaultPlan::seeded(11).force(FaultSite::PregelWorker {
        superstep: 3,
        worker: 1,
        incarnation: 0,
    })
}

#[test]
fn e2e_killed_worker_recovers_byte_identically() {
    let graph = test_graph();

    // Unfaulted baseline.
    let mut p = platform(Some(2));
    let handle = p.load_graph(&graph).unwrap();
    let baseline = p
        .run(handle, &algorithm(), &RunContext::unbounded())
        .unwrap();

    // Kill worker 1's *process* at superstep 3; checkpoints land at even
    // supersteps, so the fleet restarts from superstep 2.
    let injector = Arc::new(FaultInjector::new(crash_plan()));
    let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
    let recovered = p.run(handle, &algorithm(), &ctx).unwrap();
    assert_eq!(baseline, recovered, "recovered output differs");

    assert_eq!(injector.injected_count(), 1);
    assert_eq!(injector.recovery_count(), 1);
    // recoveries() also logs checkpoint saves; the actual restart carries
    // the killed worker's site.
    let restarts: Vec<_> = injector
        .recoveries()
        .into_iter()
        .filter(|e| e.action == RecoveryAction::CheckpointRestart)
        .collect();
    assert_eq!(restarts.len(), 1);
    assert_eq!(
        restarts[0].site,
        Some(FaultSite::PregelWorker {
            superstep: 3,
            worker: 1,
            incarnation: 0,
        })
    );
    p.unload(handle);
}

/// The same seed produces the same injection and recovery logs on every
/// run — the distributed fault path is as deterministic as the in-process
/// one.
#[test]
fn e2e_injection_and_recovery_logs_are_seed_stable() {
    let graph = test_graph();
    let mut logs = Vec::new();
    for _ in 0..2 {
        let mut p = platform(Some(2));
        let handle = p.load_graph(&graph).unwrap();
        let injector = Arc::new(FaultInjector::new(crash_plan()));
        let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
        p.run(handle, &algorithm(), &ctx).unwrap();
        logs.push((injector.injected(), injector.recoveries()));
        p.unload(handle);
    }
    assert_eq!(logs[0].0, logs[1].0, "injection log not seed-stable");
    assert_eq!(
        logs[0].1.len(),
        logs[1].1.len(),
        "recovery log not seed-stable"
    );
    for (a, b) in logs[0].1.iter().zip(&logs[1].1) {
        assert_eq!(a.action, b.action);
        assert_eq!(a.site, b.site);
    }
}

/// A crash-recovery run's merged trace never double-counts: re-shipped
/// spans are deduplicated per `(worker, incarnation, seq)`, and the
/// restarted worker's re-executed supersteps appear on a fresh
/// incarnation-tagged lane (`w1:i1`) next to its pre-crash lane (`w1:i0`).
#[test]
fn e2e_recovery_trace_dedups_spans_and_tags_incarnations() {
    let graph = test_graph();
    let mut p = platform(Some(2));
    let handle = p.load_graph(&graph).unwrap();
    let injector = Arc::new(FaultInjector::new(crash_plan()));
    let tracer = Arc::new(Tracer::new());
    let ctx = RunContext::unbounded()
        .with_faults(Arc::clone(&injector))
        .with_tracer(Arc::clone(&tracer));
    p.run(handle, &algorithm(), &ctx).unwrap();
    p.unload(handle);
    assert_eq!(injector.recovery_count(), 1, "expected one fleet restart");

    let spans = tracer.finished_spans();
    let worker_spans: Vec<_> = spans
        .iter()
        .filter(|s| s.name.starts_with("distrib.worker."))
        .collect();
    assert!(!worker_spans.is_empty(), "no merged worker spans");

    // No duplicated span seqs anywhere in the merged trace.
    let mut seen = BTreeSet::new();
    for span in &worker_spans {
        let key = (
            span.field("worker").and_then(|f| f.as_i64()),
            span.field("incarnation").and_then(|f| f.as_i64()),
            span.field("seq").and_then(|f| f.as_i64()),
        );
        assert!(
            seen.insert(key),
            "duplicated span seq in merged trace: {key:?}"
        );
    }

    // The killed worker's lanes: pre-crash incarnation 0 and post-restart
    // incarnation 1 both present; every surviving worker restarted too.
    let lanes: BTreeSet<&str> = worker_spans
        .iter()
        .filter_map(|s| s.field("proc").and_then(|f| f.as_str()))
        .collect();
    assert!(lanes.contains("w1:i0"), "pre-crash lane missing: {lanes:?}");
    assert!(lanes.contains("w1:i1"), "restart lane missing: {lanes:?}");
    for w in 0..4 {
        assert!(
            lanes.contains(format!("w{w}:i1").as_str()),
            "worker {w} has no incarnation-1 lane: {lanes:?}"
        );
    }
}

/// Without checkpointing there is nothing to restore: the loss escalates
/// as `WorkerLost`, exactly like the in-process engine.
#[test]
fn e2e_crash_without_checkpoint_escalates() {
    let graph = test_graph();
    let mut p = platform(None);
    let handle = p.load_graph(&graph).unwrap();
    let plan = FaultPlan::seeded(7).force(FaultSite::PregelWorker {
        superstep: 0,
        worker: 0,
        incarnation: 0,
    });
    let injector = Arc::new(FaultInjector::new(plan));
    let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
    let err = p.run(handle, &algorithm(), &ctx).unwrap_err();
    assert_eq!(
        err,
        PlatformError::WorkerLost {
            worker: 0,
            superstep: 0
        }
    );
    assert_eq!(injector.injected_count(), 1);
    assert_eq!(injector.recovery_count(), 0);
}

/// A crash striking every incarnation exhausts the restart budget and
/// escalates after `max_restarts` recoveries.
#[test]
fn e2e_restart_budget_is_bounded() {
    let graph = test_graph();
    let mut plan = FaultPlan::seeded(3);
    for incarnation in 0..=2 {
        plan = plan.force(FaultSite::PregelWorker {
            superstep: 2,
            worker: 1,
            incarnation,
        });
    }
    let mut p = DistributedPlatform::new(DistribConfig {
        workers: 4,
        checkpoint_interval: Some(2),
        max_restarts: 2,
        worker_bin: Some(worker_bin()),
        ..DistribConfig::default()
    });
    let handle = p.load_graph(&graph).unwrap();
    let injector = Arc::new(FaultInjector::new(plan));
    let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
    let err = p.run(handle, &algorithm(), &ctx).unwrap_err();
    assert!(matches!(err, PlatformError::WorkerLost { .. }), "{err:?}");
    assert_eq!(injector.injected_count(), 3);
    assert_eq!(injector.recovery_count(), 2);
}
