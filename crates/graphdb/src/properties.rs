//! The property store: fixed-size key/value records in singly-linked
//! chains, one chain per node — the third store of Neo4j's record layout
//! (node store, relationship store, property store).
//!
//! The workload kernels are structural and don't read properties, but the
//! store completes the database model: ETL can attach attributes (the
//! Datagen persons carry country/university/interest), and the tests pin
//! the record format.
//!
//! Record layout (13 bytes):
//! `in_use: u8 | key: u32 | value: u32 | next: u32`.

use crate::store::read_u32;

/// Null pointer in property chains.
pub const NIL: u32 = u32::MAX;

const PROP_RECORD: usize = 13;

/// One decoded property record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropRecord {
    /// Property key id (interned by the caller).
    pub key: u32,
    /// Property value (ids/small ints; larger values would go to a dynamic
    /// store, which the workload does not need).
    pub value: u32,
    /// Next property of the same owner.
    pub next: u32,
}

/// The property store plus the per-node chain heads.
#[derive(Debug, Clone, Default)]
pub struct PropertyStore {
    data: Vec<u8>,
    /// Chain head per node (grown on demand).
    heads: Vec<u32>,
}

impl PropertyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of property records.
    pub fn len(&self) -> usize {
        self.data.len() / PROP_RECORD
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Store bytes (counted against the page-cache budget alongside the
    /// node and relationship stores).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.heads.len() * 4
    }

    /// Sets `key = value` on `node`: overwrites an existing record for the
    /// key or prepends a new record to the node's chain.
    pub fn set(&mut self, node: u32, key: u32, value: u32) {
        if self.heads.len() <= node as usize {
            self.heads.resize(node as usize + 1, NIL);
        }
        // Overwrite in place when the key exists.
        let mut cursor = self.heads[node as usize];
        while cursor != NIL {
            let record = self.get(cursor);
            if record.key == key {
                let o = cursor as usize * PROP_RECORD + 5;
                self.data[o..o + 4].copy_from_slice(&value.to_le_bytes());
                return;
            }
            cursor = record.next;
        }
        let id = self.len() as u32;
        let mut bytes = [0u8; PROP_RECORD];
        bytes[0] = 1;
        bytes[1..5].copy_from_slice(&key.to_le_bytes());
        bytes[5..9].copy_from_slice(&value.to_le_bytes());
        bytes[9..13].copy_from_slice(&self.heads[node as usize].to_le_bytes());
        self.data.extend_from_slice(&bytes);
        self.heads[node as usize] = id;
    }

    /// Decodes record `id`.
    pub fn get(&self, id: u32) -> PropRecord {
        let o = id as usize * PROP_RECORD;
        PropRecord {
            key: read_u32(&self.data, o + 1),
            value: read_u32(&self.data, o + 5),
            next: read_u32(&self.data, o + 9),
        }
    }

    /// Looks up `key` on `node` by walking the chain.
    pub fn lookup(&self, node: u32, key: u32) -> Option<u32> {
        let mut cursor = *self.heads.get(node as usize)?;
        while cursor != NIL {
            let record = self.get(cursor);
            if record.key == key {
                return Some(record.value);
            }
            cursor = record.next;
        }
        None
    }

    /// Iterates `(key, value)` pairs of a node, chain order (most recently
    /// added first).
    pub fn properties(&self, node: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let Some(&head) = self.heads.get(node as usize) else {
            return out;
        };
        let mut cursor = head;
        while cursor != NIL {
            let record = self.get(cursor);
            out.push((record.key, record.value));
            cursor = record.next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_lookup() {
        let mut store = PropertyStore::new();
        store.set(3, 1, 100);
        store.set(3, 2, 200);
        store.set(7, 1, 700);
        assert_eq!(store.lookup(3, 1), Some(100));
        assert_eq!(store.lookup(3, 2), Some(200));
        assert_eq!(store.lookup(7, 1), Some(700));
        assert_eq!(store.lookup(3, 9), None);
        assert_eq!(store.lookup(99, 1), None);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn overwrite_updates_in_place() {
        let mut store = PropertyStore::new();
        store.set(0, 5, 1);
        store.set(0, 5, 2);
        assert_eq!(store.lookup(0, 5), Some(2));
        assert_eq!(store.len(), 1, "overwrite must not grow the store");
    }

    #[test]
    fn chains_list_all_properties() {
        let mut store = PropertyStore::new();
        store.set(1, 10, 1);
        store.set(1, 20, 2);
        store.set(1, 30, 3);
        let props = store.properties(1);
        assert_eq!(props, vec![(30, 3), (20, 2), (10, 1)]);
        assert!(store.properties(2).is_empty());
    }

    #[test]
    fn record_format_is_13_bytes() {
        let mut store = PropertyStore::new();
        store.set(0, 1, 2);
        assert_eq!(store.bytes(), PROP_RECORD + 4);
        let r = store.get(0);
        assert_eq!(
            r,
            PropRecord {
                key: 1,
                value: 2,
                next: NIL
            }
        );
    }

    #[test]
    fn attaches_datagen_attributes() {
        // The intended ETL use: persons' attributes as node properties.
        use graphalytics_datagen::persons::generate_persons;
        let persons = generate_persons(9, 50);
        let mut store = PropertyStore::new();
        const KEY_COUNTRY: u32 = 0;
        const KEY_UNIVERSITY: u32 = 1;
        for p in &persons {
            store.set(p.id as u32, KEY_COUNTRY, p.country);
            store.set(p.id as u32, KEY_UNIVERSITY, p.university);
        }
        assert_eq!(store.len(), 100);
        for p in &persons {
            assert_eq!(store.lookup(p.id as u32, KEY_COUNTRY), Some(p.country));
            assert_eq!(
                store.lookup(p.id as u32, KEY_UNIVERSITY),
                Some(p.university)
            );
        }
    }
}
