//! The Neo4j platform adapter.

use graphalytics_algos::{Algorithm, Output};
use graphalytics_core::platform::{GraphHandle, Platform, PlatformError, RunContext};
use graphalytics_graph::{CsrGraph, Vid};
use rustc_hash::FxHashMap;

use crate::algorithms;
use crate::store::GraphStore;

/// Neo4j platform configuration.
#[derive(Debug, Clone, Default)]
pub struct Neo4jConfig {
    /// Page-cache budget in bytes (None = unlimited). Graphs whose stores
    /// exceed the budget are refused at load time, matching the paper's
    /// "Neo4j is not able to process graphs larger than the memory of a
    /// single machine".
    pub page_cache_budget: Option<usize>,
}

struct LoadedGraph {
    store: GraphStore,
    /// Fixed-point weight per relationship, indexed by rel id (rel ids are
    /// assigned sequentially at import time) — the weight "property".
    rel_weights: Vec<u64>,
    external_ids: Vec<u64>,
    num_edges: usize,
}

/// Neo4j stand-in: an embedded single-machine graph database with
/// record-store storage and traversal-based algorithms.
pub struct Neo4jPlatform {
    config: Neo4jConfig,
    graphs: FxHashMap<u64, LoadedGraph>,
    next_handle: u64,
}

impl Neo4jPlatform {
    /// Creates the platform.
    pub fn new(config: Neo4jConfig) -> Self {
        Self {
            config,
            graphs: FxHashMap::default(),
            next_handle: 0,
        }
    }

    /// Default configuration (no page-cache cap).
    pub fn with_defaults() -> Self {
        Self::new(Neo4jConfig::default())
    }

    fn loaded(&self, handle: GraphHandle) -> Result<&LoadedGraph, PlatformError> {
        self.graphs
            .get(&handle.0)
            .ok_or(PlatformError::InvalidHandle)
    }
}

impl Platform for Neo4jPlatform {
    fn name(&self) -> &'static str {
        "Neo4j"
    }

    fn load_graph(&mut self, graph: &CsrGraph) -> Result<GraphHandle, PlatformError> {
        // ETL: bulk-import into the record stores.
        let mut store = GraphStore::new();
        let mut rel_weights = Vec::new();
        store.create_nodes(graph.num_vertices());
        for v in 0..graph.num_vertices() as Vid {
            for (&u, &w) in graph.neighbors(v).iter().zip(graph.neighbor_weights(v)) {
                if v < u {
                    let rel = store.create_relationship(v, u);
                    debug_assert_eq!(rel as usize, rel_weights.len());
                    rel_weights.push(w);
                }
            }
        }
        store.check_budget(self.config.page_cache_budget)?;
        let handle = GraphHandle(self.next_handle);
        self.next_handle += 1;
        self.graphs.insert(
            handle.0,
            LoadedGraph {
                store,
                rel_weights,
                external_ids: (0..graph.num_vertices() as Vid)
                    .map(|v| graph.external_id(v))
                    .collect(),
                num_edges: graph.num_edges(),
            },
        );
        Ok(handle)
    }

    fn run(
        &mut self,
        handle: GraphHandle,
        algorithm: &Algorithm,
        ctx: &RunContext,
    ) -> Result<Output, PlatformError> {
        let loaded = self.loaded(handle)?;
        let store = &loaded.store;
        match algorithm {
            Algorithm::Stats => Ok(Output::Stats(graphalytics_algos::StatsResult {
                num_vertices: store.nodes.len(),
                num_edges: loaded.num_edges,
                mean_local_cc: algorithms::mean_local_cc(store, ctx)?,
            })),
            Algorithm::Bfs { source } => {
                let source = loaded
                    .external_ids
                    .iter()
                    .position(|&e| e == *source)
                    .map(|i| i as u32);
                Ok(Output::Depths(algorithms::bfs(store, source, ctx)?))
            }
            Algorithm::Conn => Ok(Output::Components(algorithms::connected_components(
                store, ctx,
            )?)),
            Algorithm::Cd {
                iterations,
                hop_attenuation,
                degree_exponent,
            } => Ok(Output::Communities(algorithms::community_detection(
                store,
                *iterations,
                *hop_attenuation,
                *degree_exponent,
                ctx,
            )?)),
            Algorithm::Evo {
                new_vertices,
                p_forward,
                max_burst,
                seed,
            } => {
                ctx.check_deadline()?;
                let adjacency = algorithms::project_adjacency(store);
                Ok(Output::Evolution(
                    graphalytics_algos::evo::forest_fire_over_adjacency(
                        &adjacency,
                        &loaded.external_ids,
                        *new_vertices,
                        *p_forward,
                        *max_burst,
                        *seed,
                    ),
                ))
            }
            Algorithm::Sssp { source } => {
                let source = loaded
                    .external_ids
                    .iter()
                    .position(|&e| e == *source)
                    .map(|i| i as u32);
                Ok(Output::Distances(algorithms::sssp(
                    store,
                    &loaded.rel_weights,
                    source,
                    ctx,
                )?))
            }
            Algorithm::Lcc => Ok(Output::LocalClustering(algorithms::local_clustering(
                store, ctx,
            )?)),
            Algorithm::PageRank {
                iterations,
                damping,
            } => Ok(Output::Ranks(algorithms::pagerank(
                store,
                *iterations,
                *damping,
                ctx,
            )?)),
        }
    }

    fn unload(&mut self, handle: GraphHandle) {
        self.graphs.remove(&handle.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_algos::reference;
    use graphalytics_graph::EdgeListGraph;
    use std::sync::Arc;

    fn test_graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::from_edge_list(
            &EdgeListGraph::undirected_from_edges(vec![(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]),
        ))
    }

    #[test]
    fn all_workload_algorithms_validate() {
        let mut p = Neo4jPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        for alg in Algorithm::paper_workload() {
            let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
            let expected = reference(&g, &alg);
            assert!(expected.equivalent(&out), "{alg:?}: got {out:?}");
        }
    }

    #[test]
    fn ldbc_workload_algorithms_validate() {
        let mut p = Neo4jPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        for alg in Algorithm::ldbc_workload() {
            let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
            let expected = reference(&g, &alg);
            assert!(expected.equivalent(&out), "{alg:?}: got {out:?}");
        }
    }

    #[test]
    fn sssp_validates_on_weighted_graph() {
        let mut p = Neo4jPlatform::with_defaults();
        let g = Arc::new(CsrGraph::from_edge_list(&EdgeListGraph::new_weighted(
            Vec::new(),
            vec![
                (0, 1, 2_000_000),
                (1, 2, 500_000),
                (0, 2, 4_000_000),
                (2, 3, 1_500_000),
                (4, 5, 1_000_000),
            ],
            false,
        )));
        let handle = p.load_graph(&g).unwrap();
        let alg = Algorithm::Sssp { source: 0 };
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&g, &alg).equivalent(&out), "{out:?}");
    }

    #[test]
    fn pagerank_validates() {
        let mut p = Neo4jPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let alg = Algorithm::default_pagerank();
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&g, &alg).equivalent(&out));
    }

    #[test]
    fn page_cache_budget_rejects_large_graphs() {
        let mut p = Neo4jPlatform::new(Neo4jConfig {
            page_cache_budget: Some(100),
        });
        let g = test_graph();
        assert!(matches!(
            p.load_graph(&g),
            Err(PlatformError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn sparse_external_ids_work() {
        let mut p = Neo4jPlatform::with_defaults();
        let g = Arc::new(CsrGraph::from_edge_list(
            &EdgeListGraph::undirected_from_edges(vec![(100, 200), (200, 300)]),
        ));
        let handle = p.load_graph(&g).unwrap();
        let out = p
            .run(
                handle,
                &Algorithm::Bfs { source: 200 },
                &RunContext::unbounded(),
            )
            .unwrap();
        assert!(reference(&g, &Algorithm::Bfs { source: 200 }).equivalent(&out));
    }

    #[test]
    fn unload_invalidates_handle() {
        let mut p = Neo4jPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        p.unload(handle);
        assert_eq!(
            p.run(handle, &Algorithm::Conn, &RunContext::unbounded()),
            Err(PlatformError::InvalidHandle)
        );
    }
}
