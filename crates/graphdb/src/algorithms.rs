//! The Graphalytics workload over the record-store traversal API.
//!
//! Neo4j runs graph algorithms as single-machine procedures over its
//! stores; these implementations do the same — single-threaded walks over
//! the relationship chains. "Its performance is generally the best due to
//! its non-distributed nature" (paper §3.2) at the scales it can hold.

use graphalytics_core::platform::{PlatformError, RunContext};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

use crate::store::GraphStore;

/// BFS depths from an internal source node (None ⇒ all unreachable).
pub fn bfs(
    store: &GraphStore,
    source: Option<u32>,
    ctx: &RunContext,
) -> Result<Vec<i64>, PlatformError> {
    let n = store.nodes.len();
    let mut depths = vec![-1i64; n];
    let Some(src) = source else {
        return Ok(depths);
    };
    let mut span = ctx.tracer().span("neo4j.bfs");
    let mut queue = VecDeque::new();
    depths[src as usize] = 0;
    queue.push_back(src);
    let mut visited = 0usize;
    let mut chain_hops = 0usize;
    while let Some(v) = queue.pop_front() {
        visited += 1;
        if visited.is_multiple_of(4096) {
            ctx.check_deadline()?;
        }
        let next = depths[v as usize] + 1;
        for (_, u) in store.neighbors(v) {
            chain_hops += 1;
            if depths[u as usize] < 0 {
                depths[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    span.field("visited", visited)
        .field("max_depth", depths.iter().copied().max().unwrap_or(-1))
        // Locality proxies: the frontier pops stream in order; every
        // relationship-chain hop is a pointer chase to a random record.
        .field("seq_accesses", visited)
        .field("rand_accesses", chain_hops);
    Ok(depths)
}

/// Connected components: BFS sweeps over the chains, labeling by minimum
/// node id (the canonical CONN labeling).
pub fn connected_components(
    store: &GraphStore,
    ctx: &RunContext,
) -> Result<Vec<u32>, PlatformError> {
    let n = store.nodes.len();
    let mut span = ctx.tracer().span("neo4j.conn");
    let mut components = 0usize;
    let mut labels = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    let mut chain_hops = 0usize;
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        ctx.check_deadline()?;
        components += 1;
        labels[start as usize] = start;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (_, u) in store.neighbors(v) {
                chain_hops += 1;
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = start;
                    queue.push_back(u);
                }
            }
        }
    }
    span.field("components", components)
        .field("nodes", n)
        .field("seq_accesses", n)
        .field("rand_accesses", chain_hops);
    Ok(labels)
}

/// SSSP fixed-point distances from an internal source node: Dijkstra over
/// the relationship chains, reading each relationship's weight from the
/// rel-id-indexed `rel_weights` table (the property-store lookup a real
/// Neo4j procedure would do per relationship).
pub fn sssp(
    store: &GraphStore,
    rel_weights: &[u64],
    source: Option<u32>,
    ctx: &RunContext,
) -> Result<Vec<u64>, PlatformError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = store.nodes.len();
    let mut dists = vec![graphalytics_algos::INFINITY; n];
    let Some(src) = source else {
        return Ok(dists);
    };
    let mut span = ctx.tracer().span("neo4j.sssp");
    dists[src as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    let mut settled = 0usize;
    let mut chain_hops = 0usize;
    while let Some(Reverse((dv, v))) = heap.pop() {
        if dv > dists[v as usize] {
            continue; // Stale heap entry.
        }
        settled += 1;
        if settled.is_multiple_of(4096) {
            ctx.check_deadline()?;
        }
        for (rel, u) in store.neighbors(v) {
            chain_hops += 1;
            let nd = dv.saturating_add(rel_weights[rel as usize]);
            if nd < dists[u as usize] {
                dists[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    span.field("settled", settled)
        .field("seq_accesses", settled)
        .field("rand_accesses", chain_hops);
    Ok(dists)
}

/// Sorted, deduplicated adjacency materialized from the chains — Neo4j's
/// graph-algorithm library does the same projection before running
/// analytics.
pub fn project_adjacency(store: &GraphStore) -> Vec<Vec<u32>> {
    let n = store.nodes.len();
    let mut adjacency = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let mut neighbors: Vec<u32> = store.neighbors(v).map(|(_, o)| o).collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        adjacency[v as usize] = neighbors;
    }
    adjacency
}

/// Per-vertex local clustering coefficients over the projected adjacency
/// (nodes of degree < 2 stay at 0).
pub fn local_clustering(store: &GraphStore, ctx: &RunContext) -> Result<Vec<f64>, PlatformError> {
    let n = store.nodes.len();
    let mut coefficients = vec![0.0f64; n];
    if n == 0 {
        return Ok(coefficients);
    }
    let mut span = ctx.tracer().span("neo4j.lcc");
    span.field("nodes", n);
    let adjacency = {
        let _project = ctx.tracer().span("neo4j.project");
        project_adjacency(store)
    };
    let mut seq_scans = 0usize;
    let mut chain_hops = 0usize;
    for (v, mine) in adjacency.iter().enumerate() {
        if v.is_multiple_of(4096) {
            ctx.check_deadline()?;
        }
        let d = mine.len();
        if d < 2 {
            continue;
        }
        let mut links = 0usize;
        for &u in mine {
            let theirs = &adjacency[u as usize];
            chain_hops += 1;
            seq_scans += mine.len() + theirs.len();
            links += sorted_intersection(mine, theirs);
        }
        let triangles = links / 2;
        coefficients[v] = triangles as f64 / (d * (d - 1) / 2) as f64;
    }
    // Each neighbor lookup jumps to a random adjacency list, then the
    // intersection merges both sorted lists sequentially.
    span.field("seq_accesses", seq_scans)
        .field("rand_accesses", chain_hops);
    Ok(coefficients)
}

/// Mean local clustering coefficient over the projected adjacency.
pub fn mean_local_cc(store: &GraphStore, ctx: &RunContext) -> Result<f64, PlatformError> {
    let n = store.nodes.len();
    if n == 0 {
        return Ok(0.0);
    }
    let sum: f64 = local_clustering(store, ctx)?.iter().sum();
    Ok(sum / n as f64)
}

fn sorted_intersection(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Community detection: the deterministic Leung spec over the chains.
pub fn community_detection(
    store: &GraphStore,
    iterations: usize,
    hop_attenuation: f64,
    degree_exponent: f64,
    ctx: &RunContext,
) -> Result<Vec<u32>, PlatformError> {
    let n = store.nodes.len();
    let mut span = ctx.tracer().span("neo4j.cd");
    let mut rounds = 0usize;
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut scores: Vec<f64> = vec![1.0; n];
    let mut next_labels = labels.clone();
    let mut next_scores = scores.clone();
    let mut weight: FxHashMap<u32, (Vec<f64>, f64)> = FxHashMap::default();
    let mut chain_hops = 0usize;
    for _ in 0..iterations {
        ctx.check_deadline()?;
        rounds += 1;
        let mut changed = false;
        for v in 0..n as u32 {
            weight.clear();
            let mut any = false;
            for (_, u) in store.neighbors(v) {
                any = true;
                chain_hops += 1;
                let influence = scores[u as usize] * (store.degree(u) as f64).powf(degree_exponent);
                let entry = weight
                    .entry(labels[u as usize])
                    .or_insert((Vec::new(), 0.0));
                entry.0.push(influence);
                entry.1 = entry.1.max(scores[u as usize]);
            }
            if !any {
                next_labels[v as usize] = labels[v as usize];
                next_scores[v as usize] = scores[v as usize];
                continue;
            }
            let (best_label, _w, best_score) = graphalytics_algos::cd::argmax_label(&mut weight);
            if best_label != labels[v as usize] {
                changed = true;
                next_labels[v as usize] = best_label;
                next_scores[v as usize] = best_score * (1.0 - hop_attenuation);
            } else {
                next_labels[v as usize] = best_label;
                next_scores[v as usize] = best_score.max(scores[v as usize]);
            }
        }
        std::mem::swap(&mut labels, &mut next_labels);
        std::mem::swap(&mut scores, &mut next_scores);
        if !changed {
            break;
        }
    }
    span.field("iterations", rounds)
        .field("nodes", n)
        .field("seq_accesses", rounds * n)
        .field("rand_accesses", chain_hops);
    Ok(labels)
}

/// PageRank over the chains.
pub fn pagerank(
    store: &GraphStore,
    iterations: usize,
    damping: f64,
    ctx: &RunContext,
) -> Result<Vec<f64>, PlatformError> {
    let n = store.nodes.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut span = ctx.tracer().span("neo4j.pagerank");
    span.field("iterations", iterations).field("nodes", n);
    let inv_n = 1.0 / n as f64;
    let mut ranks = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    let mut chain_hops = 0usize;
    for _ in 0..iterations {
        ctx.check_deadline()?;
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for v in 0..n as u32 {
            let out = store.degree(v);
            if out == 0 {
                dangling += ranks[v as usize];
                continue;
            }
            let share = ranks[v as usize] / out as f64;
            for (_, u) in store.neighbors(v) {
                chain_hops += 1;
                next[u as usize] += share;
            }
        }
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        for x in next.iter_mut() {
            *x = base + damping * *x;
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    span.field("seq_accesses", iterations * n)
        .field("rand_accesses", chain_hops);
    Ok(ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> GraphStore {
        // Triangle 0-1-2, tail 2-3, separate pair 4-5.
        let mut s = GraphStore::new();
        s.create_nodes(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)] {
            s.create_relationship(a, b);
        }
        s
    }

    #[test]
    fn bfs_walks_chains() {
        let s = sample_store();
        let d = bfs(&s, Some(0), &RunContext::unbounded()).unwrap();
        assert_eq!(d, vec![0, 1, 1, 2, -1, -1]);
        let none = bfs(&s, None, &RunContext::unbounded()).unwrap();
        assert!(none.iter().all(|&x| x == -1));
    }

    #[test]
    fn components_are_canonical() {
        let s = sample_store();
        let labels = connected_components(&s, &RunContext::unbounded()).unwrap();
        assert_eq!(labels, vec![0, 0, 0, 0, 4, 4]);
    }

    #[test]
    fn lcc_matches_hand_computation() {
        let s = sample_store();
        let mean = mean_local_cc(&s, &RunContext::unbounded()).unwrap();
        // v0: 1, v1: 1, v2: 1/3, v3: 0, v4: 0, v5: 0.
        let expected = (1.0 + 1.0 + 1.0 / 3.0) / 6.0;
        assert!((mean - expected).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn projection_sorts_and_dedups() {
        let s = sample_store();
        let adj = project_adjacency(&s);
        assert_eq!(adj[2], vec![0, 1, 3]);
        assert_eq!(adj[4], vec![5]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let s = sample_store();
        let r = pagerank(&s, 30, 0.85, &RunContext::unbounded()).unwrap();
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn cd_runs_and_separates_components() {
        let s = sample_store();
        let labels = community_detection(&s, 10, 0.05, 0.1, &RunContext::unbounded()).unwrap();
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn operators_emit_spans_with_counts() {
        use graphalytics_core::trace::Tracer;
        use std::sync::Arc;

        let s = sample_store();
        let tracer = Arc::new(Tracer::new());
        let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
        let _ = bfs(&s, Some(0), &ctx).unwrap();
        let _ = connected_components(&s, &ctx).unwrap();
        let _ = mean_local_cc(&s, &ctx).unwrap();

        let spans = tracer.finished_spans();
        let b = spans.iter().find(|sp| sp.name == "neo4j.bfs").unwrap();
        assert_eq!(b.field("visited").and_then(|f| f.as_i64()), Some(4));
        assert_eq!(b.field("max_depth").and_then(|f| f.as_i64()), Some(2));
        let c = spans.iter().find(|sp| sp.name == "neo4j.conn").unwrap();
        assert_eq!(c.field("components").and_then(|f| f.as_i64()), Some(2));
        // The adjacency projection nests under the LCC operator span.
        let lcc = spans.iter().find(|sp| sp.name == "neo4j.lcc").unwrap();
        let proj = spans.iter().find(|sp| sp.name == "neo4j.project").unwrap();
        assert_eq!(proj.parent, Some(lcc.id));
    }
}
