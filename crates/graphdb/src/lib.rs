//! # graphalytics-graphdb
//!
//! An embedded single-machine graph database — the Neo4j stand-in (paper
//! §3.2): fixed-size record stores with doubly-linked relationship chains,
//! a traversal API, a page-cache budget that refuses graphs larger than
//! the machine's memory, and the Graphalytics workload as traversal
//! procedures.
//!
//! * [`store`] — node/relationship record stores;
//! * [`algorithms`] — the kernels as store traversals;
//! * [`platform`] — the [`Neo4jPlatform`] harness adapter.

pub mod algorithms;
pub mod platform;
pub mod properties;
pub mod store;

pub use platform::{Neo4jConfig, Neo4jPlatform};
pub use properties::PropertyStore;
pub use store::{GraphStore, NodeStore, RelationshipStore};
