//! Neo4j-style record stores.
//!
//! Neo4j's storage engine keeps nodes and relationships in files of
//! fixed-size records; each node record points at the head of a doubly-
//! linked chain of relationship records, and every relationship record
//! links to the next/previous relationship of *both* its endpoints. This
//! module reproduces that layout byte for byte in memory:
//!
//! * node record (9 bytes): `in_use: u8 | first_rel: u32 | degree: u32`;
//! * relationship record (21 bytes):
//!   `in_use: u8 | src: u32 | dst: u32 | src_next: u32 | dst_next: u32`.
//!
//! The stores enforce a page budget at load time — Neo4j "is not able to
//! process graphs larger than the memory of a single machine" (paper
//! §3.2), which is how its failure cells in Figure 4 arise.

use graphalytics_core::platform::PlatformError;

/// Null pointer inside record chains.
pub const NIL: u32 = u32::MAX;

const NODE_RECORD: usize = 9;
const REL_RECORD: usize = 21;

/// Decodes the little-endian u32 at `data[o..o + 4]` — the one place the
/// record stores turn raw bytes into field values.
pub(crate) fn read_u32(data: &[u8], o: usize) -> u32 {
    // lint:allow(panic-safety): a 4-byte slice always converts to [u8; 4]; record offsets are in bounds by the fixed-size record layout
    u32::from_le_bytes(data[o..o + 4].try_into().expect("4-byte record field"))
}

/// The node store: fixed-size records in one byte array.
#[derive(Debug, Clone, Default)]
pub struct NodeStore {
    data: Vec<u8>,
}

impl NodeStore {
    /// Number of node records.
    pub fn len(&self) -> usize {
        self.data.len() / NODE_RECORD
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a new node record; returns its id.
    pub fn create(&mut self) -> u32 {
        let id = self.len() as u32;
        let mut record = [0u8; NODE_RECORD];
        record[0] = 1;
        record[1..5].copy_from_slice(&NIL.to_le_bytes());
        record[5..9].copy_from_slice(&0u32.to_le_bytes());
        self.data.extend_from_slice(&record);
        id
    }

    fn offset(&self, id: u32) -> usize {
        id as usize * NODE_RECORD
    }

    /// Head of the node's relationship chain.
    pub fn first_rel(&self, id: u32) -> u32 {
        let o = self.offset(id);
        read_u32(&self.data, o + 1)
    }

    /// Sets the head of the node's relationship chain.
    pub fn set_first_rel(&mut self, id: u32, rel: u32) {
        let o = self.offset(id);
        self.data[o + 1..o + 5].copy_from_slice(&rel.to_le_bytes());
    }

    /// Cached degree of the node.
    pub fn degree(&self, id: u32) -> u32 {
        let o = self.offset(id);
        read_u32(&self.data, o + 5)
    }

    fn bump_degree(&mut self, id: u32) {
        let o = self.offset(id);
        let d = self.degree(id) + 1;
        self.data[o + 5..o + 9].copy_from_slice(&d.to_le_bytes());
    }

    /// Store size in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }
}

/// One decoded relationship record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelRecord {
    /// Source node id.
    pub src: u32,
    /// Target node id.
    pub dst: u32,
    /// Next relationship in the source's chain.
    pub src_next: u32,
    /// Next relationship in the target's chain.
    pub dst_next: u32,
}

/// The relationship store.
#[derive(Debug, Clone, Default)]
pub struct RelationshipStore {
    data: Vec<u8>,
}

impl RelationshipStore {
    /// Number of relationship records.
    pub fn len(&self) -> usize {
        self.data.len() / REL_RECORD
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a record; returns its id.
    fn create(&mut self, record: RelRecord) -> u32 {
        let id = self.len() as u32;
        let mut bytes = [0u8; REL_RECORD];
        bytes[0] = 1;
        bytes[1..5].copy_from_slice(&record.src.to_le_bytes());
        bytes[5..9].copy_from_slice(&record.dst.to_le_bytes());
        bytes[9..13].copy_from_slice(&record.src_next.to_le_bytes());
        bytes[13..17].copy_from_slice(&record.dst_next.to_le_bytes());
        // Bytes 17..21 reserved for a property pointer (unused by the
        // workload kernels but part of the record format).
        bytes[17..21].copy_from_slice(&NIL.to_le_bytes());
        self.data.extend_from_slice(&bytes);
        id
    }

    /// Decodes record `id`.
    pub fn get(&self, id: u32) -> RelRecord {
        let o = id as usize * REL_RECORD;
        RelRecord {
            src: read_u32(&self.data, o + 1),
            dst: read_u32(&self.data, o + 5),
            src_next: read_u32(&self.data, o + 9),
            dst_next: read_u32(&self.data, o + 13),
        }
    }

    /// Store size in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }
}

/// An embedded graph store: node store + relationship store + page budget.
#[derive(Debug, Clone, Default)]
pub struct GraphStore {
    /// Node records.
    pub nodes: NodeStore,
    /// Relationship records.
    pub rels: RelationshipStore,
}

impl GraphStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `n` nodes (ids `0..n`).
    pub fn create_nodes(&mut self, n: usize) {
        for _ in 0..n {
            self.nodes.create();
        }
    }

    /// Creates an undirected relationship between `a` and `b`, splicing it
    /// into both nodes' chains (Neo4j's insertion-at-head).
    pub fn create_relationship(&mut self, a: u32, b: u32) -> u32 {
        let record = RelRecord {
            src: a,
            dst: b,
            src_next: self.nodes.first_rel(a),
            dst_next: if a == b { NIL } else { self.nodes.first_rel(b) },
        };
        let id = self.rels.create(record);
        self.nodes.set_first_rel(a, id);
        self.nodes.bump_degree(a);
        if a != b {
            self.nodes.set_first_rel(b, id);
            self.nodes.bump_degree(b);
        }
        id
    }

    /// Total store bytes (what counts against the page budget).
    pub fn bytes(&self) -> usize {
        self.nodes.bytes() + self.rels.bytes()
    }

    /// Checks the store against a page-cache budget.
    pub fn check_budget(&self, budget: Option<usize>) -> Result<(), PlatformError> {
        if let Some(budget) = budget {
            let required = self.bytes();
            if required > budget {
                return Err(PlatformError::OutOfMemory { required, budget });
            }
        }
        Ok(())
    }

    /// Iterates the neighbors of `node` by walking its relationship chain
    /// (reverse insertion order, like Neo4j).
    pub fn neighbors(&self, node: u32) -> ChainIter<'_> {
        ChainIter {
            store: self,
            node,
            rel: self.nodes.first_rel(node),
        }
    }

    /// Degree of `node` from the cached counter.
    pub fn degree(&self, node: u32) -> usize {
        self.nodes.degree(node) as usize
    }
}

/// Iterator over a node's relationship chain, yielding `(rel_id, other)`.
pub struct ChainIter<'a> {
    store: &'a GraphStore,
    node: u32,
    rel: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<Self::Item> {
        if self.rel == NIL {
            return None;
        }
        let id = self.rel;
        let record = self.store.rels.get(id);
        let (other, next) = if record.src == self.node {
            (record.dst, record.src_next)
        } else {
            (record.src, record.dst_next)
        };
        self.rel = next;
        Some((id, other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> GraphStore {
        let mut s = GraphStore::new();
        s.create_nodes(4);
        s.create_relationship(0, 1);
        s.create_relationship(0, 2);
        s.create_relationship(1, 2);
        s.create_relationship(2, 3);
        s
    }

    #[test]
    fn record_sizes_are_fixed() {
        let s = sample_store();
        assert_eq!(s.nodes.bytes(), 4 * NODE_RECORD);
        assert_eq!(s.rels.bytes(), 4 * REL_RECORD);
        assert_eq!(s.nodes.len(), 4);
        assert_eq!(s.rels.len(), 4);
    }

    #[test]
    fn chains_enumerate_neighbors_both_directions() {
        let s = sample_store();
        let mut n0: Vec<u32> = s.neighbors(0).map(|(_, o)| o).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        let mut n2: Vec<u32> = s.neighbors(2).map(|(_, o)| o).collect();
        n2.sort_unstable();
        assert_eq!(n2, vec![0, 1, 3]);
        let n3: Vec<u32> = s.neighbors(3).map(|(_, o)| o).collect();
        assert_eq!(n3, vec![2]);
    }

    #[test]
    fn chain_order_is_reverse_insertion() {
        let s = sample_store();
        let order: Vec<u32> = s.neighbors(0).map(|(_, o)| o).collect();
        // Edges inserted (0,1) then (0,2): head insertion gives [2, 1].
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn degrees_are_cached() {
        let s = sample_store();
        assert_eq!(s.degree(0), 2);
        assert_eq!(s.degree(2), 3);
        assert_eq!(s.degree(3), 1);
    }

    #[test]
    fn self_loops_count_once_in_chain() {
        let mut s = GraphStore::new();
        s.create_nodes(1);
        s.create_relationship(0, 0);
        let neighbors: Vec<u32> = s.neighbors(0).map(|(_, o)| o).collect();
        assert_eq!(neighbors, vec![0]);
        assert_eq!(s.degree(0), 1);
    }

    #[test]
    fn budget_enforced() {
        let s = sample_store();
        assert!(s.check_budget(None).is_ok());
        assert!(s.check_budget(Some(s.bytes())).is_ok());
        assert!(matches!(
            s.check_budget(Some(s.bytes() - 1)),
            Err(PlatformError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn rel_records_round_trip() {
        let s = sample_store();
        let r = s.rels.get(0);
        assert_eq!(r.src, 0);
        assert_eq!(r.dst, 1);
        assert_eq!(r.src_next, NIL);
        assert_eq!(r.dst_next, NIL);
        let r3 = s.rels.get(3);
        assert_eq!((r3.src, r3.dst), (2, 3));
    }
}
