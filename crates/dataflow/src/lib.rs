//! # graphalytics-dataflow
//!
//! A Spark/GraphX-style dataflow engine (paper §3.2): partitioned datasets
//! with parallel narrow transformations and hash-shuffle wide
//! transformations, executor memory accounting that reproduces GraphX's
//! out-of-memory failures, and a GraphX-like graph layer implementing the
//! Graphalytics workload as iterative join/shuffle jobs.
//!
//! * [`rdd`] — datasets, shuffles, the memory manager;
//! * [`graphx`] — the graph layer ([`GraphFrame`]);
//! * [`platform`] — the [`GraphXPlatform`] harness adapter.

pub mod graphx;
pub mod platform;
pub mod rdd;

pub use graphx::GraphFrame;
pub use platform::{GraphXConfig, GraphXPlatform};
pub use rdd::{Dataset, MemoryManager, ShuffleStats, SparkContext};
