//! GraphX-style graph processing on the dataflow substrate.
//!
//! "GraphX is a graph-processing library built on top of the generic Apache
//! Spark distributed processing platform... GraphX supports iterative
//! algorithms implemented according to the Pregel programming model"
//! (paper §3.2). Each iteration here does what GraphX's Pregel does: join
//! the edge dataset with the vertex-state dataset, shuffle the generated
//! messages by destination, reduce/group them, and apply updates — which is
//! exactly why this platform runs slower than the native BSP engine on the
//! same workload (the ~3× CONN gap of Figure 4) and why its memory use is
//! higher (several live datasets per iteration).

use std::sync::Arc;

use graphalytics_core::platform::{PlatformError, RunContext};
use graphalytics_graph::{CsrGraph, Edge, Vid};
use rustc_hash::FxHashMap;

use crate::rdd::{Dataset, SparkContext};

/// A graph held as an arc dataset (both directions for undirected input),
/// plus the vertex count.
pub struct GraphFrame {
    ctx: Arc<SparkContext>,
    /// (src, dst) arcs.
    arcs: Dataset<(u32, u32)>,
    /// (src, (dst, weight)) arcs — the weighted triplet view SSSP joins
    /// against (GraphX keeps edge attributes in the edge RDD the same way).
    weighted_arcs: Dataset<(u32, (u32, u64))>,
    /// Vertex count (ids are dense internal ids of the canonical graph).
    pub num_vertices: usize,
}

impl GraphFrame {
    /// Loads a canonical CSR graph into datasets ("ETL").
    pub fn from_csr(ctx: &Arc<SparkContext>, g: &CsrGraph) -> Result<Self, PlatformError> {
        let mut arcs = Vec::with_capacity(g.num_arcs());
        let mut weighted = Vec::with_capacity(g.num_arcs());
        for v in 0..g.num_vertices() as Vid {
            for (&u, &w) in g.neighbors(v).iter().zip(g.neighbor_weights(v)) {
                arcs.push((v, u));
                weighted.push((v, (u, w)));
            }
        }
        Ok(Self {
            ctx: Arc::clone(ctx),
            arcs: Dataset::from_vec(ctx, arcs)?,
            weighted_arcs: Dataset::from_vec(ctx, weighted)?,
            num_vertices: g.num_vertices(),
        })
    }

    /// One message round: joins `states` (keyed by source vertex) with the
    /// arc dataset and emits `(dst, msg)` pairs, merged with
    /// `reduce_by_key(merge)`. Returns the collected per-vertex messages.
    fn propagate_reduced<S, M>(
        &self,
        states: Vec<(u32, S)>,
        msg: impl Fn(u32, &S) -> M + Sync,
        merge: impl Fn(M, M) -> M + Sync,
    ) -> Result<Vec<(u32, M)>, PlatformError>
    where
        S: Clone + Send + Sync,
        M: Clone + Send + Sync,
    {
        let state_ds = Dataset::from_vec(&self.ctx, states)?;
        let triplets = self.arcs.join(&state_ds)?;
        let messages = triplets.map(|(src, (dst, s))| (*dst, msg(*src, s)))?;
        let merged = messages.reduce_by_key(merge)?;
        Ok(merged.collect())
    }

    /// Like [`Self::propagate_reduced`] but gathers all messages per vertex
    /// (GraphX `groupByKey`).
    fn propagate_gathered<S, M>(
        &self,
        states: Vec<(u32, S)>,
        msg: impl Fn(u32, &S) -> M + Sync,
    ) -> Result<Vec<(u32, Vec<M>)>, PlatformError>
    where
        S: Clone + Send + Sync,
        M: Clone + Send + Sync,
    {
        let state_ds = Dataset::from_vec(&self.ctx, states)?;
        let triplets = self.arcs.join(&state_ds)?;
        let messages = triplets.map(|(src, (dst, s))| (*dst, msg(*src, s)))?;
        let gathered = messages.group_by_key()?;
        Ok(gathered.collect())
    }

    /// BFS depths from an internal source vertex.
    pub fn bfs(&self, source: Option<Vid>, ctx: &RunContext) -> Result<Vec<i64>, PlatformError> {
        let n = self.num_vertices;
        let mut depths = vec![-1i64; n];
        let Some(src) = source else {
            return Ok(depths);
        };
        depths[src as usize] = 0;
        let mut frontier: Vec<(u32, i64)> = vec![(src, 0)];
        let mut iteration = 0usize;
        while !frontier.is_empty() {
            ctx.check_deadline()?;
            let mut span = ctx.tracer().span("graphx.iteration");
            span.field("job", "bfs")
                .field("iteration", iteration)
                .field("frontier", frontier.len());
            let stages_before = self.ctx.stats().stages;
            let proposals = self.propagate_reduced(frontier, |_, &d| d + 1, |a, b| a.min(b))?;
            let mut next = Vec::new();
            for (v, d) in proposals {
                if depths[v as usize] < 0 {
                    depths[v as usize] = d;
                    next.push((v, d));
                }
            }
            span.field("stages", self.ctx.stats().stages - stages_before);
            frontier = next;
            iteration += 1;
        }
        Ok(depths)
    }

    /// SSSP fixed-point distances from an internal source vertex:
    /// Bellman-Ford rounds where the improved frontier joins the weighted
    /// arc dataset and proposals are min-reduced per destination — the
    /// shape of GraphX's built-in `ShortestPaths`.
    pub fn sssp(&self, source: Option<Vid>, ctx: &RunContext) -> Result<Vec<u64>, PlatformError> {
        let n = self.num_vertices;
        let mut dists = vec![graphalytics_algos::INFINITY; n];
        let Some(src) = source else {
            return Ok(dists);
        };
        dists[src as usize] = 0;
        let mut frontier: Vec<(u32, u64)> = vec![(src, 0)];
        let mut iteration = 0usize;
        while !frontier.is_empty() {
            ctx.check_deadline()?;
            let mut span = ctx.tracer().span("graphx.iteration");
            span.field("job", "sssp")
                .field("iteration", iteration)
                .field("frontier", frontier.len());
            let stages_before = self.ctx.stats().stages;
            let state_ds = Dataset::from_vec(&self.ctx, frontier)?;
            let triplets = self.weighted_arcs.join(&state_ds)?;
            let messages = triplets.map(|(_src, ((dst, w), d))| (*dst, d.saturating_add(*w)))?;
            let proposals = messages.reduce_by_key(|a, b| a.min(b))?.collect();
            let mut next = Vec::new();
            for (v, d) in proposals {
                if d < dists[v as usize] {
                    dists[v as usize] = d;
                    next.push((v, d));
                }
            }
            span.field("stages", self.ctx.stats().stages - stages_before);
            frontier = next;
            iteration += 1;
        }
        Ok(dists)
    }

    /// Connected components via HashMin label propagation (this uses the
    /// same built-in pattern as GraphX's `connectedComponents`).
    pub fn connected_components(&self, ctx: &RunContext) -> Result<Vec<u32>, PlatformError> {
        let n = self.num_vertices;
        let mut labels: Vec<u32> = (0..n as u32).collect();
        let mut frontier: Vec<(u32, u32)> = labels.iter().map(|&l| (l, l)).collect();
        let mut iteration = 0usize;
        while !frontier.is_empty() {
            ctx.check_deadline()?;
            let mut span = ctx.tracer().span("graphx.iteration");
            span.field("job", "conn")
                .field("iteration", iteration)
                .field("frontier", frontier.len());
            let stages_before = self.ctx.stats().stages;
            let proposals = self.propagate_reduced(frontier, |_, &l| l, |a, b| a.min(b))?;
            let mut next = Vec::new();
            for (v, l) in proposals {
                if l < labels[v as usize] {
                    labels[v as usize] = l;
                    next.push((v, l));
                }
            }
            span.field("stages", self.ctx.stats().stages - stages_before);
            frontier = next;
            iteration += 1;
        }
        Ok(labels)
    }

    /// Community detection following the deterministic Leung spec (see
    /// `graphalytics_algos::cd`); messages carry `(label, score,
    /// influence)` and are gathered (not reduced) per destination.
    pub fn community_detection(
        &self,
        iterations: usize,
        hop_attenuation: f64,
        degree_exponent: f64,
        degrees: &[usize],
        ctx: &RunContext,
    ) -> Result<Vec<u32>, PlatformError> {
        let n = self.num_vertices;
        let mut labels: Vec<u32> = (0..n as u32).collect();
        let mut scores: Vec<f64> = vec![1.0; n];
        for iteration in 0..iterations {
            ctx.check_deadline()?;
            let mut span = ctx.tracer().span("graphx.iteration");
            span.field("job", "cd")
                .field("iteration", iteration)
                .field("frontier", n);
            let stages_before = self.ctx.stats().stages;
            let states: Vec<(u32, (u32, f64, f64))> = (0..n as u32)
                .map(|v| {
                    let influence =
                        scores[v as usize] * (degrees[v as usize] as f64).powf(degree_exponent);
                    (v, (labels[v as usize], scores[v as usize], influence))
                })
                .collect();
            let gathered = self.propagate_gathered(states, |_, s| *s)?;
            let mut changed = false;
            let mut next_labels = labels.clone();
            let mut next_scores = scores.clone();
            for (v, messages) in gathered {
                let mut weight: FxHashMap<u32, (Vec<f64>, f64)> = FxHashMap::default();
                for (label, score, influence) in messages {
                    let entry = weight.entry(label).or_insert((Vec::new(), 0.0));
                    entry.0.push(influence);
                    entry.1 = entry.1.max(score);
                }
                let (best_label, _w, best_score) =
                    graphalytics_algos::cd::argmax_label(&mut weight);
                if best_label != labels[v as usize] {
                    changed = true;
                    next_labels[v as usize] = best_label;
                    next_scores[v as usize] = best_score * (1.0 - hop_attenuation);
                } else {
                    next_labels[v as usize] = best_label;
                    next_scores[v as usize] = best_score.max(scores[v as usize]);
                }
            }
            labels = next_labels;
            scores = next_scores;
            span.field("stages", self.ctx.stats().stages - stages_before)
                .field("changed", changed);
            if !changed {
                break;
            }
        }
        Ok(labels)
    }

    /// Per-vertex local clustering coefficients, computed entirely in
    /// dataflow: neighbor lists are built with `group_by_key`, shipped
    /// across the edges with a join, and intersected per destination.
    /// Vertices that receive no lists (degree < 2) stay at 0.
    pub fn local_clustering(&self, ctx: &RunContext) -> Result<Vec<f64>, PlatformError> {
        ctx.check_deadline()?;
        let n = self.num_vertices;
        let mut coefficients = vec![0.0f64; n];
        if n == 0 {
            return Ok(coefficients);
        }
        let mut span = ctx.tracer().span("graphx.iteration");
        span.field("job", "lcc").field("iteration", 0usize);
        let stages_before = self.ctx.stats().stages;
        // (v, sorted neighbor list).
        let adjacency = self.arcs.group_by_key()?.map(|(v, ns)| {
            let mut sorted = ns.clone();
            sorted.sort_unstable();
            (*v, sorted)
        })?;
        // Ship each source's list to every neighbor: (dst, N(src)).
        let shipped = self.arcs.join(&adjacency)?;
        let lists_at_dst = shipped.map(|(_src, (dst, list))| (*dst, list.clone()))?;
        let gathered = lists_at_dst.group_by_key()?;
        ctx.check_deadline()?;
        // Intersect with the local list.
        let with_own = gathered.join(&adjacency)?;
        let lcc = with_own.map(|(v, (lists, own))| {
            let d = own.len();
            if d < 2 {
                return (*v, 0.0);
            }
            let mut links = 0usize;
            for list in lists {
                links += graphalytics_graph::metrics::sorted_intersection_len(own, list);
            }
            let triangles = links / 2;
            (*v, triangles as f64 / (d * (d - 1) / 2) as f64)
        })?;
        for (v, c) in lcc.collect() {
            coefficients[v as usize] = c;
        }
        span.field("stages", self.ctx.stats().stages - stages_before);
        Ok(coefficients)
    }

    /// Mean local clustering coefficient — the STATS half of the workload,
    /// averaging [`Self::local_clustering`] over all vertices.
    pub fn mean_local_cc(&self, ctx: &RunContext) -> Result<f64, PlatformError> {
        let n = self.num_vertices;
        if n == 0 {
            return Ok(0.0);
        }
        let total: f64 = self.local_clustering(ctx)?.iter().sum();
        Ok(total / n as f64)
    }

    /// PageRank: contribution shuffle + reduce per iteration, dangling mass
    /// redistributed from the driver (matching the reference step for
    /// step).
    pub fn pagerank(
        &self,
        iterations: usize,
        damping: f64,
        degrees: &[usize],
        ctx: &RunContext,
    ) -> Result<Vec<f64>, PlatformError> {
        let n = self.num_vertices;
        if n == 0 {
            return Ok(Vec::new());
        }
        let inv_n = 1.0 / n as f64;
        let mut ranks = vec![inv_n; n];
        for iteration in 0..iterations {
            ctx.check_deadline()?;
            let mut span = ctx.tracer().span("graphx.iteration");
            span.field("job", "pagerank").field("iteration", iteration);
            let stages_before = self.ctx.stats().stages;
            let shares: Vec<(u32, f64)> = (0..n as u32)
                .filter(|&v| degrees[v as usize] > 0)
                .map(|v| (v, ranks[v as usize] / degrees[v as usize] as f64))
                .collect();
            let dangling: f64 = (0..n).filter(|&v| degrees[v] == 0).map(|v| ranks[v]).sum();
            let received = self.propagate_reduced(shares, |_, &s| s, |a, b| a + b)?;
            let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
            let mut next = vec![base; n];
            for (v, sum) in received {
                next[v as usize] += damping * sum;
            }
            span.field("stages", self.ctx.stats().stages - stages_before);
            ranks = next;
        }
        Ok(ranks)
    }

    /// EVO: the adjacency is collected to the driver (GraphX programs
    /// collect small results to the driver routinely) and the spec'd
    /// forest-fire walk runs over it, reproducing the reference decisions
    /// bit for bit.
    pub fn forest_fire(
        &self,
        external_ids: &[u64],
        new_vertices: usize,
        p_forward: f64,
        max_burst: usize,
        seed: u64,
        ctx: &RunContext,
    ) -> Result<Vec<Edge>, PlatformError> {
        ctx.check_deadline()?;
        let n = self.num_vertices;
        if n == 0 || new_vertices == 0 {
            return Ok(Vec::new());
        }
        let mut adjacency: Vec<Vec<Vid>> = vec![Vec::new(); n];
        for (v, mut ns) in self.arcs.group_by_key()?.collect() {
            ns.sort_unstable();
            adjacency[v as usize] = ns;
        }
        ctx.check_deadline()?;
        Ok(graphalytics_algos::evo::forest_fire_over_adjacency(
            &adjacency,
            external_ids,
            new_vertices,
            p_forward,
            max_burst,
            seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_algos as algos;
    use graphalytics_graph::EdgeListGraph;

    fn setup(edges: Vec<(u64, u64)>) -> (Arc<SparkContext>, Arc<CsrGraph>, GraphFrame) {
        let g = Arc::new(CsrGraph::from_edge_list(
            &EdgeListGraph::undirected_from_edges(edges),
        ));
        let ctx = SparkContext::new(4, None);
        let frame = GraphFrame::from_csr(&ctx, &g).unwrap();
        (ctx, g, frame)
    }

    fn test_edges() -> Vec<(u64, u64)> {
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)];
        edges.extend((6..12).map(|i| (i, i + 1)));
        edges.push((12, 0));
        edges
    }

    #[test]
    fn bfs_matches_reference() {
        let (_c, g, frame) = setup(test_edges());
        let depths = frame.bfs(Some(0), &RunContext::unbounded()).unwrap();
        assert_eq!(depths, algos::bfs::bfs(&g, 0));
    }

    #[test]
    fn sssp_matches_reference_on_weighted_graph() {
        let g = Arc::new(CsrGraph::from_edge_list(&EdgeListGraph::new_weighted(
            Vec::new(),
            vec![
                (0, 1, 2_000_000),
                (1, 2, 500_000),
                (0, 2, 4_000_000),
                (2, 3, 1_500_000),
                (4, 5, 1_000_000),
            ],
            false,
        )));
        let ctx = SparkContext::new(4, None);
        let frame = GraphFrame::from_csr(&ctx, &g).unwrap();
        let dists = frame
            .sssp(g.internal_id(0), &RunContext::unbounded())
            .unwrap();
        assert_eq!(dists, algos::sssp::sssp(&g, 0));
        assert_eq!(dists[4], algos::INFINITY);
        let unreached = frame.sssp(None, &RunContext::unbounded()).unwrap();
        assert!(unreached.iter().all(|&d| d == algos::INFINITY));
    }

    #[test]
    fn local_clustering_matches_reference() {
        let (_c, g, frame) = setup(test_edges());
        let lccs = frame.local_clustering(&RunContext::unbounded()).unwrap();
        assert_eq!(lccs, algos::lcc::local_clustering(&g));
    }

    #[test]
    fn conn_matches_reference() {
        let (_c, g, frame) = setup(test_edges());
        let labels = frame
            .connected_components(&RunContext::unbounded())
            .unwrap();
        assert_eq!(labels, algos::conn::connected_components(&g));
    }

    #[test]
    fn cd_matches_reference() {
        let (_c, g, frame) = setup(test_edges());
        let labels = frame
            .community_detection(10, 0.05, 0.1, &g.degrees(), &RunContext::unbounded())
            .unwrap();
        assert_eq!(labels, algos::cd::community_detection(&g, 10, 0.05, 0.1));
    }

    #[test]
    fn stats_matches_reference() {
        let (_c, g, frame) = setup(test_edges());
        let mean = frame.mean_local_cc(&RunContext::unbounded()).unwrap();
        let expected = algos::stats::stats(&g).mean_local_cc;
        assert!((mean - expected).abs() < 1e-12, "{mean} vs {expected}");
    }

    #[test]
    fn pagerank_matches_reference() {
        let (_c, g, frame) = setup(test_edges());
        let ranks = frame
            .pagerank(20, 0.85, &g.degrees(), &RunContext::unbounded())
            .unwrap();
        let expected = algos::pagerank::pagerank(&g, 20, 0.85);
        for (a, b) in ranks.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn evo_matches_reference() {
        let (_c, g, frame) = setup(test_edges());
        let ids: Vec<u64> = (0..g.num_vertices() as Vid)
            .map(|v| g.external_id(v))
            .collect();
        let edges = frame
            .forest_fire(&ids, 16, 0.3, 32, 0x45564F, &RunContext::unbounded())
            .unwrap();
        let expected = algos::evo::forest_fire(&g, 16, 0.3, 32, 0x45564F);
        assert_eq!(edges, expected);
    }

    #[test]
    fn shuffles_happen_every_iteration() {
        let (c, _g, frame) = setup(test_edges());
        let before = c.stats().shuffles;
        let _ = frame
            .connected_components(&RunContext::unbounded())
            .unwrap();
        let after = c.stats().shuffles;
        assert!(after > before + 2, "iterative shuffling expected");
    }

    #[test]
    fn memory_budget_aborts_iterative_jobs() {
        let g = Arc::new(CsrGraph::from_edge_list(
            &EdgeListGraph::undirected_from_edges((0..2000).map(|i| (i, i + 1)).collect()),
        ));
        let ctx = SparkContext::new(4, Some(20_000));
        match GraphFrame::from_csr(&ctx, &g) {
            Err(PlatformError::OutOfMemory { .. }) => {}
            Ok(frame) => {
                let err = frame.connected_components(&RunContext::unbounded());
                assert!(
                    matches!(err, Err(PlatformError::OutOfMemory { .. })),
                    "{err:?}"
                );
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}
