//! A Spark-like partitioned dataset engine.
//!
//! GraphX "represents graphs as Spark resilient distributed datasets
//! (RDDs)" (paper §3.2). This module is the Spark substrate: partitioned
//! datasets with parallel map-side transformations and hash-shuffle
//! reduce/join/group operations, plus the piece that matters for
//! reproducing Figure 4 — a [`MemoryManager`] that accounts every live
//! dataset against an executor memory budget and fails the job with an
//! out-of-memory error when materializing more than the budget allows
//! ("GraphX is unable to process some of the workloads that Giraph can
//! process, indicated by missing values in the figure").

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use graphalytics_core::faults::{fingerprint, FaultInjector, FaultSite, RecoveryAction};
use graphalytics_core::faultwire;
use graphalytics_core::platform::PlatformError;
use graphalytics_core::trace::Tracer;
use graphalytics_graph::partition::mix64;
use parking_lot::Mutex;

/// Tracks live dataset bytes against an optional budget.
#[derive(Debug, Default)]
pub struct MemoryManager {
    budget: Option<usize>,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryManager {
    /// A manager with the given budget (None = unlimited).
    pub fn new(budget: Option<usize>) -> Self {
        Self {
            budget,
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Reserves `bytes`; fails when the budget would be exceeded.
    pub fn allocate(&self, bytes: usize) -> Result<(), PlatformError> {
        let new_used = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(budget) = self.budget {
            if new_used > budget {
                self.used.fetch_sub(bytes, Ordering::Relaxed);
                return Err(PlatformError::OutOfMemory {
                    required: new_used,
                    budget,
                });
            }
        }
        self.peak.fetch_max(new_used, Ordering::Relaxed);
        Ok(())
    }

    /// Releases `bytes` (dataset dropped).
    pub fn release(&self, bytes: usize) {
        self.used.fetch_sub(
            bytes.min(self.used.load(Ordering::Relaxed)),
            Ordering::Relaxed,
        );
    }

    /// Currently live bytes.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Peak live bytes over the manager's lifetime.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Shuffle statistics (the network choke point, dataflow edition).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShuffleStats {
    /// Records moved between partitions by shuffles.
    pub shuffle_records: usize,
    /// Shuffle operations executed.
    pub shuffles: usize,
    /// Stages (transformations) executed.
    pub stages: usize,
}

/// Fetch attempts per shuffle partition / allocation before the fault is
/// escalated (Spark's `spark.shuffle.io.maxRetries`-style bound).
const MAX_FETCH_ATTEMPTS: u32 = 3;

/// The armed fault hook: set by the platform at run start, consulted at
/// the engine's injection points (shuffle fetches, allocations).
#[derive(Default)]
struct FaultHook {
    injector: Option<Arc<FaultInjector>>,
    tracer: Option<Arc<Tracer>>,
}

/// The per-job context: partition count, memory manager, statistics.
pub struct SparkContext {
    /// Number of partitions for new datasets and shuffles.
    pub partitions: usize,
    /// Memory accounting.
    pub memory: Arc<MemoryManager>,
    stats: Mutex<ShuffleStats>,
    faults: Mutex<FaultHook>,
    alloc_seq: AtomicU64,
}

impl SparkContext {
    /// Creates a context.
    pub fn new(partitions: usize, memory_budget: Option<usize>) -> Arc<Self> {
        Arc::new(Self {
            partitions: partitions.max(1),
            memory: Arc::new(MemoryManager::new(memory_budget)),
            stats: Mutex::new(ShuffleStats::default()),
            faults: Mutex::new(FaultHook::default()),
            alloc_seq: AtomicU64::new(0),
        })
    }

    /// Arms (or, with `None`, disarms) fault injection for subsequent
    /// operations on this context. The platform calls this at run start
    /// from the harness's `RunContext`.
    pub fn arm_faults(&self, injector: Option<Arc<FaultInjector>>, tracer: Option<Arc<Tracer>>) {
        *self.faults.lock() = FaultHook { injector, tracer };
    }

    /// Snapshot of the shuffle statistics.
    pub fn stats(&self) -> ShuffleStats {
        *self.stats.lock()
    }

    fn fault_armed(&self) -> bool {
        self.faults.lock().injector.is_some()
    }

    fn probe(&self, site: FaultSite) -> Result<(), PlatformError> {
        let hook = self.faults.lock();
        match &hook.injector {
            Some(inj) => {
                let tracer = hook.tracer.as_deref().unwrap_or_else(|| Tracer::noop());
                faultwire::inject_fault(tracer, inj, site)
            }
            None => Ok(()),
        }
    }

    fn recover(&self, action: RecoveryAction, site: FaultSite) {
        let hook = self.faults.lock();
        let tracer = hook.tracer.as_deref().unwrap_or_else(|| Tracer::noop());
        faultwire::note_recovery(tracer, hook.injector.as_deref(), action, Some(site), 0);
    }

    /// Budget-checked allocation with a transient-failure injection point:
    /// under an armed fault plan an allocation may fail spuriously and be
    /// retried (bounded), modeling executor memory pressure distinct from
    /// a deterministic budget excess.
    fn alloc(&self, bytes: usize) -> Result<(), PlatformError> {
        if self.fault_armed() {
            let scope = fingerprint("graphx.alloc");
            let sequence = self.alloc_seq.fetch_add(1, Ordering::Relaxed);
            let mut attempt = 0u32;
            loop {
                let site = FaultSite::Alloc {
                    scope,
                    sequence,
                    attempt,
                };
                match self.probe(site.clone()) {
                    Ok(()) => break,
                    Err(e) if attempt + 1 >= MAX_FETCH_ATTEMPTS => return Err(e),
                    Err(_) => {
                        self.recover(RecoveryAction::AllocRetry, site);
                        attempt += 1;
                    }
                }
            }
        }
        self.memory.allocate(bytes)
    }

    fn note_stage(&self) {
        self.stats.lock().stages += 1;
    }

    fn note_shuffle(&self, records: usize) {
        let mut s = self.stats.lock();
        s.shuffles += 1;
        s.shuffle_records += records;
    }
}

/// A partitioned, memory-accounted dataset.
pub struct Dataset<T> {
    ctx: Arc<SparkContext>,
    parts: Vec<Vec<T>>,
    bytes: usize,
}

impl<T> Drop for Dataset<T> {
    fn drop(&mut self) {
        self.ctx.memory.release(self.bytes);
    }
}

/// Dataset size estimate: element count × element size. Nested heap
/// payloads (e.g. `Vec` contents inside elements) are *not* counted — the
/// same blind spot Spark's SizeEstimator has for deeply nested records —
/// so budgets meter the dominant flat datasets (arcs, messages, pairs)
/// and under-count list-shipping stages.
fn estimate_bytes<T>(len: usize) -> usize {
    len * std::mem::size_of::<T>().max(1)
}

impl<T: Send + Sync> Dataset<T> {
    /// Parallelizes a vector across the context's partitions.
    pub fn from_vec(ctx: &Arc<SparkContext>, items: Vec<T>) -> Result<Self, PlatformError> {
        let bytes = estimate_bytes::<T>(items.len());
        ctx.alloc(bytes)?;
        let p = ctx.partitions;
        let mut parts: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        let per = items.len().div_ceil(p).max(1);
        for (i, item) in items.into_iter().enumerate() {
            parts[(i / per).min(p - 1)].push(item);
        }
        ctx.note_stage();
        Ok(Self {
            ctx: Arc::clone(ctx),
            parts,
            bytes,
        })
    }

    /// Builds a dataset directly from pre-shuffled partitions.
    fn from_parts(ctx: &Arc<SparkContext>, parts: Vec<Vec<T>>) -> Result<Self, PlatformError> {
        let bytes = estimate_bytes::<T>(parts.iter().map(Vec::len).sum());
        ctx.alloc(bytes)?;
        Ok(Self {
            ctx: Arc::clone(ctx),
            parts,
            bytes,
        })
    }

    /// Total element count.
    pub fn count(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Collects all elements (driver-side).
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.count());
        for p in &self.parts {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Narrow transformation: per-partition map, parallel across partitions.
    pub fn map<U: Send + Sync>(
        &self,
        f: impl Fn(&T) -> U + Sync,
    ) -> Result<Dataset<U>, PlatformError> {
        self.map_partitions(|part| part.iter().map(&f).collect())
    }

    /// Narrow transformation: per-partition filter.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Sync) -> Result<Dataset<T>, PlatformError>
    where
        T: Clone,
    {
        self.map_partitions(|part| part.iter().filter(|x| f(x)).cloned().collect())
    }

    /// Narrow transformation: per-partition flat map.
    pub fn flat_map<U: Send + Sync>(
        &self,
        f: impl Fn(&T) -> Vec<U> + Sync,
    ) -> Result<Dataset<U>, PlatformError> {
        self.map_partitions(|part| part.iter().flat_map(&f).collect())
    }

    /// The general narrow transformation: one closure per partition,
    /// executed in parallel worker threads.
    pub fn map_partitions<U: Send + Sync>(
        &self,
        f: impl Fn(&[T]) -> Vec<U> + Sync,
    ) -> Result<Dataset<U>, PlatformError> {
        self.ctx.note_stage();
        let mut outputs: Vec<Option<Vec<U>>> = (0..self.parts.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (part, slot) in self.parts.iter().zip(outputs.iter_mut()) {
                let f = &f;
                scope.spawn(move |_| {
                    *slot = Some(f(part));
                });
            }
        })
        .map_err(|_| PlatformError::Internal("dataflow worker panicked".to_string()))?;
        let parts: Vec<Vec<U>> = outputs
            .into_iter()
            .map(|o| {
                o.ok_or_else(|| {
                    PlatformError::Internal("dataflow partition produced no output".to_string())
                })
            })
            .collect::<Result<_, _>>()?;
        Dataset::from_parts(&self.ctx, parts)
    }

    /// Union of two datasets (narrow).
    pub fn union(&self, other: &Dataset<T>) -> Result<Dataset<T>, PlatformError>
    where
        T: Clone,
    {
        let mut parts = self.parts.clone();
        for (i, p) in other.parts.iter().enumerate() {
            if i < parts.len() {
                parts[i].extend(p.iter().cloned());
            } else {
                parts.push(p.clone());
            }
        }
        self.ctx.note_stage();
        Dataset::from_parts(&self.ctx, parts)
    }
}

/// Hash of a key to its shuffle partition.
fn key_partition<K: std::hash::Hash>(key: &K, partitions: usize) -> usize {
    let mut hasher = rustc_hash::FxHasher::default();
    std::hash::Hash::hash(key, &mut hasher);
    (mix64(std::hash::Hasher::finish(&hasher)) % partitions as u64) as usize
}

impl<K, V> Dataset<(K, V)>
where
    K: std::hash::Hash + Eq + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Wide transformation: hash-shuffles by key, then reduces values with
    /// `f` within each partition.
    pub fn reduce_by_key(
        &self,
        f: impl Fn(V, V) -> V + Sync,
    ) -> Result<Dataset<(K, V)>, PlatformError> {
        let shuffled = self.shuffle_by_key()?;
        shuffled.map_partitions(|part| {
            let mut acc: rustc_hash::FxHashMap<K, V> = rustc_hash::FxHashMap::default();
            for (k, v) in part {
                match acc.entry(k.clone()) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let old = e.get().clone();
                        e.insert(f(old, v.clone()));
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v.clone());
                    }
                }
            }
            acc.into_iter().collect()
        })
    }

    /// Wide transformation: hash-shuffles by key and groups all values.
    pub fn group_by_key(&self) -> Result<Dataset<(K, Vec<V>)>, PlatformError> {
        let shuffled = self.shuffle_by_key()?;
        shuffled.map_partitions(|part| {
            let mut acc: rustc_hash::FxHashMap<K, Vec<V>> = rustc_hash::FxHashMap::default();
            for (k, v) in part {
                acc.entry(k.clone()).or_default().push(v.clone());
            }
            acc.into_iter().collect()
        })
    }

    /// Wide transformation: inner hash join.
    #[allow(clippy::type_complexity)]
    pub fn join<W>(&self, other: &Dataset<(K, W)>) -> Result<Dataset<(K, (V, W))>, PlatformError>
    where
        W: Clone + Send + Sync,
    {
        let left = self.shuffle_by_key()?;
        let right = other.shuffle_by_key()?;
        left.ctx.note_stage();
        #[allow(clippy::type_complexity)]
        let mut outputs: Vec<Option<Vec<(K, (V, W))>>> =
            (0..left.parts.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for ((lpart, rpart), slot) in left
                .parts
                .iter()
                .zip(right.parts.iter())
                .zip(outputs.iter_mut())
            {
                scope.spawn(move |_| {
                    let mut table: rustc_hash::FxHashMap<&K, Vec<&V>> =
                        rustc_hash::FxHashMap::default();
                    for (k, v) in lpart {
                        table.entry(k).or_default().push(v);
                    }
                    let mut out = Vec::new();
                    for (k, w) in rpart {
                        if let Some(vs) = table.get(k) {
                            for v in vs {
                                out.push((k.clone(), ((*v).clone(), w.clone())));
                            }
                        }
                    }
                    *slot = Some(out);
                });
            }
        })
        .map_err(|_| PlatformError::Internal("join worker panicked".to_string()))?;
        let parts: Vec<_> = outputs
            .into_iter()
            .map(|o| {
                o.ok_or_else(|| {
                    PlatformError::Internal("join partition produced no output".to_string())
                })
            })
            .collect::<Result<Vec<_>, PlatformError>>()?;
        Dataset::from_parts(&self.ctx, parts)
    }

    /// Redistributes records so all records of a key land in the same
    /// partition. Counts every moved record as shuffle traffic.
    ///
    /// Under an armed fault plan each shuffle output partition is a
    /// partition-loss injection point; a lost partition is rebuilt by
    /// lineage — recomputed from this (parent) dataset's partitions, the
    /// RDD recovery model — bounded by [`MAX_FETCH_ATTEMPTS`].
    pub fn shuffle_by_key(&self) -> Result<Dataset<(K, V)>, PlatformError> {
        let p = self.ctx.partitions;
        let shuffle_id = self.ctx.stats().shuffles as u32;
        let mut parts: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
        let mut moved = 0usize;
        for (src_idx, part) in self.parts.iter().enumerate() {
            for (k, v) in part {
                let dest = key_partition(k, p);
                if dest != src_idx {
                    moved += 1;
                }
                parts[dest].push((k.clone(), v.clone()));
            }
        }
        if self.ctx.fault_armed() {
            for (dest, dest_part) in parts.iter_mut().enumerate() {
                let mut attempt = 0u32;
                loop {
                    let site = FaultSite::ShufflePartition {
                        shuffle: shuffle_id,
                        partition: dest as u32,
                        attempt,
                    };
                    match self.ctx.probe(site.clone()) {
                        Ok(()) => break,
                        Err(e) if attempt + 1 >= MAX_FETCH_ATTEMPTS => return Err(e),
                        Err(_) => {
                            // Lineage recompute: rebuild the lost partition
                            // from the parent partitions, in the same order
                            // as the original scatter — byte-identical.
                            dest_part.clear();
                            for part in &self.parts {
                                for (k, v) in part {
                                    if key_partition(k, p) == dest {
                                        dest_part.push((k.clone(), v.clone()));
                                    }
                                }
                            }
                            self.ctx.recover(RecoveryAction::LineageRecompute, site);
                            attempt += 1;
                        }
                    }
                }
            }
        }
        self.ctx.note_shuffle(moved);
        Dataset::from_parts(&self.ctx, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<SparkContext> {
        SparkContext::new(4, None)
    }

    #[test]
    fn map_filter_flatmap() {
        let c = ctx();
        let d = Dataset::from_vec(&c, (0..100u32).collect()).unwrap();
        let mapped = d.map(|x| x * 2).unwrap();
        assert_eq!(mapped.count(), 100);
        let filtered = mapped.filter(|&x| x % 4 == 0).unwrap();
        assert_eq!(filtered.count(), 50);
        let expanded = filtered.flat_map(|&x| vec![x, x]).unwrap();
        assert_eq!(expanded.count(), 100);
        let mut all = expanded.collect();
        all.sort_unstable();
        assert_eq!(all[0], 0);
        assert_eq!(all[1], 0);
    }

    #[test]
    fn reduce_by_key_sums() {
        let c = ctx();
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 5, 1u64)).collect();
        let d = Dataset::from_vec(&c, pairs).unwrap();
        let reduced = d.reduce_by_key(|a, b| a + b).unwrap();
        let mut out = reduced.collect();
        out.sort_unstable();
        assert_eq!(out, vec![(0, 20), (1, 20), (2, 20), (3, 20), (4, 20)]);
    }

    #[test]
    fn group_by_key_collects_all_values() {
        let c = ctx();
        let d = Dataset::from_vec(&c, vec![(1u32, 10u32), (2, 20), (1, 11)]).unwrap();
        let grouped = d.group_by_key().unwrap();
        let mut out = grouped.collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 2);
        let mut g1 = out[0].1.clone();
        g1.sort_unstable();
        assert_eq!(g1, vec![10, 11]);
    }

    #[test]
    fn join_matches_keys() {
        let c = ctx();
        let left = Dataset::from_vec(&c, vec![(1u32, "a"), (2, "b"), (2, "b2")]).unwrap();
        let right = Dataset::from_vec(&c, vec![(2u32, 100u32), (3, 300)]).unwrap();
        let joined = left.join(&right).unwrap();
        let mut out = joined.collect();
        out.sort_by_key(|(k, (v, _))| (*k, v.to_string()));
        assert_eq!(out, vec![(2, ("b", 100)), (2, ("b2", 100))]);
    }

    #[test]
    fn memory_budget_fails_oversized_jobs() {
        let c = SparkContext::new(2, Some(128));
        let ok = Dataset::from_vec(&c, (0..10u64).collect());
        assert!(ok.is_ok());
        let too_big = Dataset::from_vec(&c, (0..1000u64).collect());
        assert!(matches!(too_big, Err(PlatformError::OutOfMemory { .. })));
    }

    #[test]
    fn dropping_datasets_releases_memory() {
        let c = SparkContext::new(2, Some(10_000));
        let before = c.memory.used();
        {
            let _d = Dataset::from_vec(&c, (0..100u64).collect()).unwrap();
            assert!(c.memory.used() > before);
        }
        assert_eq!(c.memory.used(), before);
        assert!(c.memory.peak() > 0);
    }

    #[test]
    fn shuffle_stats_are_recorded() {
        let c = ctx();
        let d = Dataset::from_vec(&c, (0..100u32).map(|i| (i, i)).collect::<Vec<_>>()).unwrap();
        let _ = d.reduce_by_key(|a, _| a).unwrap();
        let stats = c.stats();
        assert_eq!(stats.shuffles, 1);
        assert!(stats.shuffle_records > 0);
        assert!(stats.stages >= 2);
    }

    #[test]
    fn lost_shuffle_partition_recomputes_by_lineage() {
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 7, 1u64)).collect();
        // Fault-free baseline.
        let baseline = {
            let c = ctx();
            let d = Dataset::from_vec(&c, pairs.clone()).unwrap();
            d.reduce_by_key(|a, b| a + b).unwrap().collect()
        };
        // Same job with partition 1 of the first shuffle lost once.
        let c = ctx();
        let injector = Arc::new(FaultInjector::new(
            graphalytics_core::faults::FaultPlan::seeded(3).force(FaultSite::ShufflePartition {
                shuffle: 0,
                partition: 1,
                attempt: 0,
            }),
        ));
        c.arm_faults(Some(Arc::clone(&injector)), None);
        let d = Dataset::from_vec(&c, pairs).unwrap();
        let out = d.reduce_by_key(|a, b| a + b).unwrap().collect();
        assert_eq!(out, baseline); // Lineage rebuild is byte-identical.
        assert_eq!(injector.injected_count(), 1);
        assert_eq!(injector.recovery_count(), 1);
    }

    #[test]
    fn repeated_partition_loss_escalates() {
        let c = ctx();
        let mut plan = graphalytics_core::faults::FaultPlan::seeded(3);
        for attempt in 0..MAX_FETCH_ATTEMPTS {
            plan = plan.force(FaultSite::ShufflePartition {
                shuffle: 0,
                partition: 0,
                attempt,
            });
        }
        c.arm_faults(Some(Arc::new(FaultInjector::new(plan))), None);
        let d = Dataset::from_vec(&c, vec![(1u32, 1u32), (2, 2)]).unwrap();
        match d.shuffle_by_key() {
            Err(e) => assert_eq!(
                e,
                PlatformError::PartitionLost {
                    shuffle: 0,
                    partition: 0
                }
            ),
            Ok(_) => panic!("expected partition loss to escalate"),
        }
    }

    #[test]
    fn transient_alloc_failures_retry_then_escalate() {
        let scope = fingerprint("graphx.alloc");
        // One transient alloc failure: retried, job succeeds.
        let c = ctx();
        let injector = Arc::new(FaultInjector::new(
            graphalytics_core::faults::FaultPlan::seeded(5).force(FaultSite::Alloc {
                scope,
                sequence: 0,
                attempt: 0,
            }),
        ));
        c.arm_faults(Some(Arc::clone(&injector)), None);
        let d = Dataset::from_vec(&c, (0..10u32).collect()).unwrap();
        assert_eq!(d.count(), 10);
        assert_eq!(injector.injected_count(), 1);
        assert_eq!(injector.recovery_count(), 1);
        // Exhausting every attempt escalates as AllocFailed.
        let c = ctx();
        let mut plan = graphalytics_core::faults::FaultPlan::seeded(5);
        for attempt in 0..MAX_FETCH_ATTEMPTS {
            plan = plan.force(FaultSite::Alloc {
                scope,
                sequence: 0,
                attempt,
            });
        }
        c.arm_faults(Some(Arc::new(FaultInjector::new(plan))), None);
        match Dataset::from_vec(&c, (0..10u32).collect()) {
            Err(e) => assert!(matches!(e, PlatformError::AllocFailed { .. })),
            Ok(_) => panic!("expected alloc failure to escalate"),
        }
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = Dataset::from_vec(&c, vec![1u32, 2]).unwrap();
        let b = Dataset::from_vec(&c, vec![3u32]).unwrap();
        let u = a.union(&b).unwrap();
        let mut out = u.collect();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_dataset_operations() {
        let c = ctx();
        let d: Dataset<(u32, u32)> = Dataset::from_vec(&c, vec![]).unwrap();
        assert_eq!(d.count(), 0);
        assert_eq!(d.reduce_by_key(|a, _| a).unwrap().count(), 0);
        assert_eq!(d.group_by_key().unwrap().count(), 0);
    }
}
