//! The GraphX platform adapter.

use std::sync::Arc;

use graphalytics_algos::{Algorithm, Output};
use graphalytics_core::platform::{GraphHandle, Platform, PlatformError, RunContext};
use graphalytics_graph::{CsrGraph, Vid};
use rustc_hash::FxHashMap;

use crate::graphx::GraphFrame;
use crate::rdd::{ShuffleStats, SparkContext};

/// GraphX platform configuration.
#[derive(Debug, Clone)]
pub struct GraphXConfig {
    /// Dataset partitions (Spark executors × cores).
    pub partitions: usize,
    /// Executor memory budget in bytes (None = unlimited). GraphX keeps
    /// several datasets alive per iteration, so for the same graph it needs
    /// noticeably more than the BSP engine — which is how the paper's
    /// "GraphX is unable to process some of the workloads that Giraph can"
    /// failures reproduce.
    pub memory_budget: Option<usize>,
}

impl Default for GraphXConfig {
    fn default() -> Self {
        Self {
            partitions: 4,
            memory_budget: None,
        }
    }
}

struct Loaded {
    graph: Arc<CsrGraph>,
    ctx: Arc<SparkContext>,
    frame: GraphFrame,
}

/// GraphX stand-in: graph algorithms as dataflow jobs over an RDD-like
/// substrate with executor memory accounting.
pub struct GraphXPlatform {
    config: GraphXConfig,
    graphs: FxHashMap<u64, Loaded>,
    next_handle: u64,
}

impl GraphXPlatform {
    /// Creates the platform.
    pub fn new(config: GraphXConfig) -> Self {
        Self {
            config,
            graphs: FxHashMap::default(),
            next_handle: 0,
        }
    }

    /// Default configuration.
    pub fn with_defaults() -> Self {
        Self::new(GraphXConfig::default())
    }

    /// Shuffle statistics for a loaded graph (for the choke-point benches).
    pub fn shuffle_stats(&self, handle: GraphHandle) -> Option<ShuffleStats> {
        self.graphs.get(&handle.0).map(|l| l.ctx.stats())
    }

    fn loaded(&self, handle: GraphHandle) -> Result<&Loaded, PlatformError> {
        self.graphs
            .get(&handle.0)
            .ok_or(PlatformError::InvalidHandle)
    }
}

impl Platform for GraphXPlatform {
    fn name(&self) -> &'static str {
        "GraphX"
    }

    fn load_graph(&mut self, graph: &CsrGraph) -> Result<GraphHandle, PlatformError> {
        let ctx = SparkContext::new(self.config.partitions, self.config.memory_budget);
        let frame = GraphFrame::from_csr(&ctx, graph)?;
        let handle = GraphHandle(self.next_handle);
        self.next_handle += 1;
        self.graphs.insert(
            handle.0,
            Loaded {
                graph: Arc::new(graph.clone()),
                ctx,
                frame,
            },
        );
        Ok(handle)
    }

    fn run(
        &mut self,
        handle: GraphHandle,
        algorithm: &Algorithm,
        ctx: &RunContext,
    ) -> Result<Output, PlatformError> {
        let loaded = self.loaded(handle)?;
        // Arm (or disarm) the engine's injection points — shuffle fetches
        // and allocations — from this run's context.
        loaded
            .ctx
            .arm_faults(ctx.faults().cloned(), ctx.tracer_arc());
        let graph = &loaded.graph;
        let frame = &loaded.frame;
        let mut job_span = ctx.tracer().span("graphx.job");
        job_span.field("job", algorithm.name());
        let stats_before = loaded.ctx.stats();
        let stages_before = stats_before.stages;
        let shuffle_before = stats_before.shuffle_records;
        let result = match algorithm {
            Algorithm::Stats => {
                let mean = frame.mean_local_cc(ctx)?;
                Ok(Output::Stats(graphalytics_algos::StatsResult {
                    num_vertices: graph.num_vertices(),
                    num_edges: graph.num_edges(),
                    mean_local_cc: mean,
                }))
            }
            Algorithm::Bfs { source } => {
                Ok(Output::Depths(frame.bfs(graph.internal_id(*source), ctx)?))
            }
            Algorithm::Conn => Ok(Output::Components(frame.connected_components(ctx)?)),
            Algorithm::Cd {
                iterations,
                hop_attenuation,
                degree_exponent,
            } => Ok(Output::Communities(frame.community_detection(
                *iterations,
                *hop_attenuation,
                *degree_exponent,
                &graph.degrees(),
                ctx,
            )?)),
            Algorithm::Evo {
                new_vertices,
                p_forward,
                max_burst,
                seed,
            } => {
                let ids: Vec<u64> = (0..graph.num_vertices() as Vid)
                    .map(|v| graph.external_id(v))
                    .collect();
                Ok(Output::Evolution(frame.forest_fire(
                    &ids,
                    *new_vertices,
                    *p_forward,
                    *max_burst,
                    *seed,
                    ctx,
                )?))
            }
            Algorithm::Sssp { source } => Ok(Output::Distances(
                frame.sssp(graph.internal_id(*source), ctx)?,
            )),
            Algorithm::Lcc => Ok(Output::LocalClustering(frame.local_clustering(ctx)?)),
            Algorithm::PageRank {
                iterations,
                damping,
            } => Ok(Output::Ranks(frame.pagerank(
                *iterations,
                *damping,
                &graph.degrees(),
                ctx,
            )?)),
        };
        let stats_after = loaded.ctx.stats();
        job_span.field("stages", stats_after.stages - stages_before);
        // Shuffled records cross partition boundaries — the dataflow
        // engine's contribution to the network choke point.
        job_span.field(
            "shuffle_records",
            stats_after.shuffle_records - shuffle_before,
        );
        result
    }

    fn unload(&mut self, handle: GraphHandle) {
        self.graphs.remove(&handle.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_algos::reference;
    use graphalytics_graph::EdgeListGraph;

    fn load(platform: &mut GraphXPlatform) -> (GraphHandle, Arc<CsrGraph>) {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (4, 5),
        ]));
        let handle = platform.load_graph(&g).unwrap();
        (handle, Arc::new(g))
    }

    #[test]
    fn all_workload_algorithms_validate() {
        let mut p = GraphXPlatform::with_defaults();
        let (handle, graph) = load(&mut p);
        for alg in Algorithm::paper_workload() {
            let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
            let expected = reference(&graph, &alg);
            assert!(expected.equivalent(&out), "{alg:?}: {out:?}");
        }
    }

    #[test]
    fn ldbc_workload_algorithms_validate() {
        let mut p = GraphXPlatform::with_defaults();
        let (handle, graph) = load(&mut p);
        for alg in Algorithm::ldbc_workload() {
            let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
            let expected = reference(&graph, &alg);
            assert!(expected.equivalent(&out), "{alg:?}: {out:?}");
        }
    }

    #[test]
    fn pagerank_validates() {
        let mut p = GraphXPlatform::with_defaults();
        let (handle, graph) = load(&mut p);
        let alg = Algorithm::default_pagerank();
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&graph, &alg).equivalent(&out));
    }

    #[test]
    fn oom_on_large_graph_with_small_budget() {
        let mut p = GraphXPlatform::new(GraphXConfig {
            partitions: 4,
            memory_budget: Some(4_000),
        });
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(
            (0..2000).map(|i| (i, i + 1)).collect(),
        ));
        match p.load_graph(&g) {
            Err(PlatformError::OutOfMemory { .. }) => {}
            Ok(h) => {
                let err = p.run(h, &Algorithm::Conn, &RunContext::unbounded());
                assert!(matches!(err, Err(PlatformError::OutOfMemory { .. })));
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn shuffle_stats_accessible() {
        let mut p = GraphXPlatform::with_defaults();
        let (handle, _) = load(&mut p);
        let _ = p
            .run(handle, &Algorithm::Conn, &RunContext::unbounded())
            .unwrap();
        let stats = p.shuffle_stats(handle).unwrap();
        assert!(stats.shuffles > 0);
        assert!(p.shuffle_stats(GraphHandle(42)).is_none());
    }

    #[test]
    fn jobs_emit_iteration_spans_with_stage_counts() {
        use graphalytics_core::trace::{FieldValue, Tracer};

        let mut p = GraphXPlatform::with_defaults();
        let (handle, _) = load(&mut p);
        let tracer = Arc::new(Tracer::new());
        let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
        let _ = p.run(handle, &Algorithm::Conn, &ctx).unwrap();

        let spans = tracer.finished_spans();
        let job: Vec<_> = spans.iter().filter(|s| s.name == "graphx.job").collect();
        assert_eq!(job.len(), 1);
        assert_eq!(job[0].field("job"), Some(&FieldValue::Str("CONN".into())));

        let iters: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "graphx.iteration")
            .collect();
        assert!(!iters.is_empty(), "expected per-iteration spans");
        for (i, s) in iters.iter().enumerate() {
            assert_eq!(s.field("iteration"), Some(&FieldValue::I64(i as i64)));
            assert_eq!(s.parent, Some(job[0].id));
            let Some(&FieldValue::I64(stages)) = s.field("stages") else {
                panic!("iteration span missing stage count: {s:?}");
            };
            assert!(stages > 0, "each HashMin round runs dataflow stages");
        }
    }

    #[test]
    fn unload_invalidates() {
        let mut p = GraphXPlatform::with_defaults();
        let (handle, _) = load(&mut p);
        p.unload(handle);
        assert_eq!(
            p.run(handle, &Algorithm::Conn, &RunContext::unbounded()),
            Err(PlatformError::InvalidHandle)
        );
    }
}
