//! Property tests for the dataflow engine: dataset transformations agree
//! with their `Vec` equivalents, shuffles preserve multisets, memory
//! accounting balances, and the GraphX layer matches the reference.

use graphalytics_core::platform::RunContext;
use graphalytics_dataflow::{Dataset, GraphFrame, SparkContext};
use graphalytics_graph::{CsrGraph, EdgeListGraph};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn map_filter_agree_with_vec(
        items in proptest::collection::vec(any::<u32>(), 0..500),
        partitions in 1usize..8,
    ) {
        let ctx = SparkContext::new(partitions, None);
        let ds = Dataset::from_vec(&ctx, items.clone()).unwrap();
        let mapped = ds.map(|&x| x.wrapping_mul(3)).unwrap();
        let filtered = mapped.filter(|&x| x % 2 == 0).unwrap();
        let mut got = filtered.collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = items
            .iter()
            .map(|&x| x.wrapping_mul(3))
            .filter(|&x| x % 2 == 0)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn reduce_by_key_agrees_with_btreemap(
        pairs in proptest::collection::vec((0u32..20, 0u64..100), 0..500),
        partitions in 1usize..8,
    ) {
        let ctx = SparkContext::new(partitions, None);
        let ds = Dataset::from_vec(&ctx, pairs.clone()).unwrap();
        let reduced = ds.reduce_by_key(|a, b| a + b).unwrap();
        let mut got: Vec<(u32, u64)> = reduced.collect();
        got.sort_unstable();
        let mut expected: BTreeMap<u32, u64> = BTreeMap::new();
        for (k, v) in pairs {
            *expected.entry(k).or_default() += v;
        }
        prop_assert_eq!(got, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn group_by_key_preserves_multisets(
        pairs in proptest::collection::vec((0u32..10, 0u32..50), 0..300),
        partitions in 1usize..6,
    ) {
        let ctx = SparkContext::new(partitions, None);
        let ds = Dataset::from_vec(&ctx, pairs.clone()).unwrap();
        let grouped = ds.group_by_key().unwrap();
        let mut got: BTreeMap<u32, Vec<u32>> = grouped.collect().into_iter().collect();
        got.values_mut().for_each(|v| v.sort_unstable());
        let mut expected: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (k, v) in pairs {
            expected.entry(k).or_default().push(v);
        }
        expected.values_mut().for_each(|v| v.sort_unstable());
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn join_agrees_with_nested_loops(
        left in proptest::collection::vec((0u32..12, 0u16..50), 0..120),
        right in proptest::collection::vec((0u32..12, 0u16..50), 0..120),
    ) {
        let ctx = SparkContext::new(4, None);
        let l = Dataset::from_vec(&ctx, left.clone()).unwrap();
        let r = Dataset::from_vec(&ctx, right.clone()).unwrap();
        let mut got = l.join(&r).unwrap().collect();
        got.sort_unstable();
        let mut expected = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    expected.push((lk, (lv, rv)));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn memory_returns_to_baseline_after_drop(
        items in proptest::collection::vec(any::<u64>(), 1..300),
    ) {
        let ctx = SparkContext::new(3, None);
        let before = ctx.memory.used();
        {
            let ds = Dataset::from_vec(&ctx, items).unwrap();
            let _m = ds.map(|&x| x).unwrap();
            prop_assert!(ctx.memory.used() > before);
        }
        prop_assert_eq!(ctx.memory.used(), before);
    }

    #[test]
    fn graphx_conn_matches_reference(
        raw in proptest::collection::vec((0u64..25, 0u64..25), 1..120),
    ) {
        let el = EdgeListGraph::undirected_from_edges(raw);
        let csr = CsrGraph::from_edge_list(&el);
        let ctx = SparkContext::new(4, None);
        let frame = GraphFrame::from_csr(&ctx, &csr).unwrap();
        let labels = frame.connected_components(&RunContext::unbounded()).unwrap();
        prop_assert_eq!(labels, graphalytics_algos::conn::connected_components(&csr));
    }
}
