//! A lightweight item/block parser over the lexer's token stream.
//!
//! The flow-aware rules (lock-order, guard-across-blocking,
//! unsafe-contract) need more structure than a flat token list: which
//! tokens form a function body, where a brace-balanced block ends, and
//! what the extent of an `unsafe` item is. This module recovers exactly
//! that much structure — no types, no expressions, no name resolution —
//! which keeps the parser a few hundred lines and immune to most syntax
//! it has never seen (unknown constructs simply contribute tokens to the
//! enclosing block).
//!
//! All indices are into the *code* token vector (comments already
//! filtered out by the caller), so adjacency here means source adjacency
//! modulo whitespace and comments.

use crate::lexer::{Tok, TokKind};

/// One parsed `fn` item: the tokens of its header and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Func {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Index of the `fn` keyword token.
    pub fn_idx: usize,
    /// Indices of the body's `{` and matching `}`; `None` for bodyless
    /// declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One `unsafe` occurrence with its syntactic extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeExtent {
    /// Index of the `unsafe` keyword token.
    pub start: usize,
    /// Index of the last token of the extent (matching `}` of the block /
    /// item body, or the `;` of a bodyless declaration).
    pub end: usize,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
}

/// Finds the matching `}` for the `{` at `open` (or `)` for `(`,
/// `]` for `[`). Only the opener's bracket class is tracked: a `{` search
/// ignores parens entirely, which is safe because Rust keeps bracket kinds
/// individually balanced. Returns `code.len() - 1` on unbalanced input
/// (truncated source) so extents stay in bounds.
pub fn matching_close(code: &[&Tok], open: usize) -> usize {
    let (o, c) = match code[open].text.as_str() {
        "{" => ('{', '}'),
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Extracts every `fn` item (free functions and methods at any nesting
/// depth, including nested fns and fns inside `impl`/`trait` blocks).
pub fn functions(code: &[&Tok]) -> Vec<Func> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("fn") {
            continue;
        }
        // `fn` pointer types (`fn(usize) -> u8`) have no name ident.
        let Some(name_tok) = code.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Scan forward for the body `{` at paren depth 0; a `;` first
        // means a bodyless declaration. Generic params, argument lists,
        // return types, and where clauses contain no braces, so the first
        // `{` outside parens is the body.
        let mut paren = 0usize;
        let mut body = None;
        for (j, t) in code.iter().enumerate().skip(i + 2) {
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && t.is_punct('{') {
                body = Some((j, matching_close(code, j)));
                break;
            } else if paren == 0 && t.is_punct(';') {
                break;
            }
        }
        out.push(Func {
            name: name_tok.text.clone(),
            fn_idx: i,
            body,
            line: code[i].line,
        });
    }
    out
}

/// Extracts every `unsafe` occurrence — including blocks nested inside
/// `unsafe fn` bodies: each one is a distinct proof obligation.
pub fn unsafe_extents(code: &[&Tok]) -> Vec<UnsafeExtent> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("unsafe") {
            continue;
        }
        let end = match code.get(i + 1) {
            // `unsafe { ... }` block.
            Some(t) if t.is_punct('{') => matching_close(code, i + 1),
            // `unsafe fn` / `unsafe impl` / `unsafe trait`: extent runs
            // through the item body's matching `}` (or a terminating `;`
            // for bodyless forms like `unsafe fn f();` in traits).
            Some(_) => {
                let mut paren = 0usize;
                let mut end = code.len().saturating_sub(1);
                for (j, t) in code.iter().enumerate().skip(i + 1) {
                    if t.is_punct('(') || t.is_punct('[') {
                        paren += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        paren = paren.saturating_sub(1);
                    } else if paren == 0 && t.is_punct('{') {
                        end = matching_close(code, j);
                        break;
                    } else if paren == 0 && t.is_punct(';') {
                        end = j;
                        break;
                    }
                }
                end
            }
            None => i,
        };
        out.push(UnsafeExtent {
            start: i,
            end,
            line: code[i].line,
        });
    }
    out
}

/// A stable 32-bit hash of a token range — the `SAFETY[xxxxxxxx]` proof
/// pin. Computed over token text + kind only (whitespace and comments
/// never reach `code`), so editing the proof comment does not invalidate
/// it, while any change to the guarded code does.
pub fn token_hash(code: &[&Tok], start: usize, end: usize) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis.
    let mut mix = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    for t in &code[start..=end.min(code.len().saturating_sub(1))] {
        for b in t.text.bytes() {
            mix(b);
        }
        // Kind tag + separator keep `a b` distinct from `ab`.
        mix(match t.kind {
            TokKind::Ident => 1,
            TokKind::Str => 2,
            TokKind::Char => 3,
            TokKind::Num => 4,
            TokKind::Lifetime => 5,
            TokKind::Punct => 6,
            TokKind::LineComment | TokKind::BlockComment => 7,
        });
    }
    ((h >> 32) as u32) ^ (h as u32)
}

/// Renders a [`token_hash`] the way contracts spell it: 8 lowercase hex
/// digits.
pub fn render_hash(h: u32) -> String {
    format!("{h:08x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code(src: &str) -> Vec<Tok> {
        lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect()
    }

    #[test]
    fn functions_are_found_with_bodies() {
        let toks = code(
            "impl Foo { fn a(&self) -> u8 { 1 } }\n\
             fn b<T: Fn(usize)>(x: T) { x(1); }\n\
             trait T { fn c(&self); }\n",
        );
        let refs: Vec<&Tok> = toks.iter().collect();
        let fns = functions(&refs);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_some());
        assert!(fns[2].body.is_none());
        // Body extents are balanced.
        let (open, close) = fns[1].body.unwrap();
        assert!(refs[open].is_punct('{') && refs[close].is_punct('}'));
    }

    #[test]
    fn matching_close_tracks_nesting() {
        let toks = code("{ a { b } c }");
        let refs: Vec<&Tok> = toks.iter().collect();
        assert_eq!(matching_close(&refs, 0), refs.len() - 1);
        assert_eq!(matching_close(&refs, 2), 4);
    }

    #[test]
    fn unsafe_extents_cover_blocks_and_items() {
        let toks = code(
            "unsafe impl Send for X {}\n\
             pub unsafe fn f(&self) { unsafe { g() } }\n",
        );
        let refs: Vec<&Tok> = toks.iter().collect();
        let extents = unsafe_extents(&refs);
        assert_eq!(extents.len(), 3);
        // The impl extent ends at its `}`.
        assert!(refs[extents[0].end].is_punct('}'));
        // The fn extent contains the inner block extent.
        assert!(extents[1].start < extents[2].start);
        assert!(extents[1].end >= extents[2].end);
    }

    #[test]
    fn token_hash_ignores_comments_but_not_code() {
        let a = code("unsafe { ptr.add(i).write(v) }");
        let b = code("unsafe { /* proof edited */ ptr.add(i).write(v) }");
        let c = code("unsafe { ptr.add(i).read() }");
        let ha = token_hash(&a.iter().collect::<Vec<_>>(), 0, a.len() - 1);
        let hb = token_hash(&b.iter().collect::<Vec<_>>(), 0, b.len() - 1);
        let hc = token_hash(&c.iter().collect::<Vec<_>>(), 0, c.len() - 1);
        assert_eq!(ha, hb);
        assert_ne!(ha, hc);
        assert_eq!(render_hash(ha).len(), 8);
    }
}
