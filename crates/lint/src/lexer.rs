//! A lightweight Rust lexer for the invariant checker.
//!
//! The checker's rules are token-shaped ("`Instant` outside test code",
//! "`.unwrap()` in a platform crate"), so plain substring matching would
//! fire inside string literals, doc comments, and `//` commentary. This
//! lexer classifies the source into just enough categories to avoid that:
//! identifiers, punctuation, string/char/number literals, lifetimes, and
//! comments — each tagged with its 1-based line number.
//!
//! It is deliberately not a full Rust lexer: tokens the rules never
//! inspect (e.g. the exact punctuation of `..=`) come out as single-char
//! punct tokens, which is fine because the rules only ever match
//! identifier/punct sequences.

/// Token categories the rules can match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `Instant`, `unwrap`, ...).
    Ident,
    /// A string literal (regular, raw, byte, or C string); `text` holds the
    /// *contents* without quotes/escapes-resolution (raw bytes between the
    /// delimiters).
    Str,
    /// A character or byte-character literal.
    Char,
    /// A numeric literal.
    Num,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// A single punctuation character (`.`, `(`, `!`, `?`, ...).
    Punct,
    /// A `//` comment (including doc comments); `text` holds everything
    /// after the `//`.
    LineComment,
    /// A `/* */` comment (nesting handled); `text` holds the interior.
    BlockComment,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Category.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punct token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token vector (comments included, in source order).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => self.string(line),
                b'r' | b'b' | b'c' if self.starts_prefixed_literal() => self.prefixed_literal(line),
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line),
                _ => {
                    let start = self.pos;
                    self.bump();
                    // Finish a multi-byte UTF-8 scalar so we never split one.
                    while self.peek(0).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push(TokKind::Punct, text, line);
                }
            }
        }
        self.out
    }

    /// Does the cursor sit on `r"`, `r#"`, `b"`, `br"`, `b'`, `c"`, ...?
    fn starts_prefixed_literal(&self) -> bool {
        let mut i = 1;
        // Up to two prefix letters (`br`, `cr`, `rb` doesn't exist but the
        // extra tolerance is harmless for a linter).
        if matches!(self.peek(i), Some(b'r' | b'b' | b'c')) {
            i += 1;
        }
        loop {
            match self.peek(i) {
                Some(b'#') => i += 1,
                Some(b'"') => return true,
                Some(b'\'') => return i == 1 && self.peek(0) == Some(b'b'),
                _ => return false,
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let start = self.pos;
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    end = self.pos;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    end = self.pos;
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(TokKind::BlockComment, text, line);
    }

    fn string(&mut self, line: u32) {
        self.bump(); // Opening quote.
        let start = self.pos;
        let mut end;
        loop {
            end = self.pos;
            match self.bump() {
                None => break,
                Some(b'"') => break,
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    /// Raw/byte/C strings (`r"..."`, `r#"..."#`, `b"..."`, `b'x'`, ...).
    fn prefixed_literal(&mut self, line: u32) {
        // Consume prefix letters.
        while matches!(self.peek(0), Some(b'r' | b'b' | b'c')) {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        match self.peek(0) {
            Some(b'\'') => {
                // Byte char: b'x' or b'\n'.
                self.bump();
                if self.peek(0) == Some(b'\\') {
                    self.bump();
                }
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line);
            }
            Some(b'"') if hashes == 0 => {
                // Plain (possibly byte/C) string; escapes apply unless raw.
                // `r"..."` has no escapes but also no hashes — handle both:
                // a preceding `r` means raw. Conservatively treat prefixed
                // zero-hash strings as escaped; a raw `r"` with a `\` before
                // the closing quote is vanishingly rare in this codebase.
                self.string(line);
            }
            Some(b'"') => {
                // Raw with hashes: scan for `"` followed by `hashes` hashes.
                self.bump();
                let start = self.pos;
                let end;
                'outer: loop {
                    match self.bump() {
                        None => {
                            end = self.pos;
                            break;
                        }
                        Some(b'"') => {
                            let close_at = self.pos - 1;
                            for k in 0..hashes {
                                if self.peek(k) != Some(b'#') {
                                    continue 'outer;
                                }
                            }
                            for _ in 0..hashes {
                                self.bump();
                            }
                            end = close_at;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
                self.push(TokKind::Str, text, line);
            }
            _ => {
                // `r#ident` raw identifier, or a lone prefix letter that is
                // actually an ident start — rewind is impossible, so emit
                // what we can: treat as identifier from here.
                self.ident(line);
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // The `'`.
                     // `'\...'` or `'x'` is a char literal; `'ident` without a closing
                     // quote is a lifetime/label.
        if self.peek(0) == Some(b'\\') {
            self.bump();
            // Escape payload up to the closing quote.
            while self.peek(0).is_some_and(|b| b != b'\'') {
                self.bump();
            }
            self.bump();
            self.push(TokKind::Char, String::new(), line);
            return;
        }
        // A char like 'x' (possibly multi-byte scalar) closes with a quote
        // right after one scalar; otherwise it's a lifetime.
        let mut scalar_len = 1;
        if let Some(b) = self.peek(0) {
            scalar_len = match b {
                0x00..=0x7F => 1,
                0xC0..=0xDF => 2,
                0xE0..=0xEF => 3,
                _ => 4,
            };
        }
        if self.peek(scalar_len) == Some(b'\'') {
            for _ in 0..=scalar_len {
                self.bump();
            }
            self.push(TokKind::Char, String::new(), line);
        } else {
            let start = self.pos;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
        }
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        while self.peek(0).is_some_and(|b| {
            b.is_ascii_alphanumeric() || b == b'_' || b == b'.' && self.peek(1) != Some(b'.')
        }) {
            // Stop the dot-consumption when it's a method call on a literal
            // (`1.max(2)`): a dot followed by an alphabetic char is a call.
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_alphabetic()) {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = lex("let x = a.unwrap();");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "a", "unwrap"]);
    }

    #[test]
    fn string_contents_are_not_idents() {
        let toks = kinds(r#"let s = "Instant::now() inside a string";"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "Instant"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("Instant")));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = kinds(r#"let s = "a \" b"; unwrap"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == r#"a \" b"#));
    }

    #[test]
    fn raw_strings() {
        let toks = kinds(r##"let s = r#"has "quotes" and panic!()"#;"##);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "panic"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quotes")));
    }

    #[test]
    fn comments_are_classified() {
        let toks = lex("// line panic!\n/* block unwrap */ code");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("panic"));
        assert_eq!(toks[1].kind, TokKind::BlockComment);
        assert!(toks[1].text.contains("unwrap"));
        assert!(toks[2].is_ident("code"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* nested */ still comment */ after");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[1].is_ident("after"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<(String, u32)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("b".to_string(), 2),
                ("c".to_string(), 4)
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = lex("let x = 1.max(2); let y = 1.5;");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5"));
    }
}
