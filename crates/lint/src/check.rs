//! The analysis pipeline: per-file passes (tokenize, parse, region
//! model, every applicable rule), a workspace-global lock-graph phase,
//! then `lint:allow` suppression and unused-pragma reporting per file.
//!
//! Entry points: [`check_sources`] analyzes a whole file set together —
//! required for `lock-order`, whose cycle check spans files —
//! and [`check_source`] is the single-file convenience used by fixture
//! tests (its lock graph is then file-local).

use crate::lexer::{lex, Tok, TokKind};
use crate::lockgraph::{self, LockEdge};
use crate::parse::{functions, render_hash, token_hash, unsafe_extents};
use crate::regions::{fn_regions, guards_across_blocking, Acquire};
use crate::rules::{
    rule, valid_metric_name, valid_span_name, Rule, RULES, SPAWN_AUDIT_EXEMPT_FILES,
};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (see [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The `path:line: [rule] message` diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed, well-formed `// lint:allow(<rule>): <reason>` pragma.
struct Allow {
    rule: &'static str,
    line: u32,
    used: bool,
}

/// Everything the per-file phase produces; suppressions are applied only
/// after the global phase has contributed its findings.
struct FileAnalysis {
    rel_path: String,
    test_boundary: u32,
    findings: Vec<Finding>,
    allows: Vec<Allow>,
    lock_edges: Vec<LockEdge>,
}

/// Checks a set of files as one workspace: per-file rules, then the
/// global lock-acquisition graph, then per-file allow application.
/// `rel_path`s must be workspace-relative with `/` separators — rule
/// scoping keys off their leading components.
pub fn check_sources(files: &[(String, String)]) -> Vec<Finding> {
    let mut analyses: Vec<FileAnalysis> = files.iter().map(|(p, s)| analyze(p, s)).collect();
    let edges: Vec<LockEdge> = analyses
        .iter()
        .flat_map(|a| a.lock_edges.iter().cloned())
        .collect();
    for f in lockgraph::check_cycles(&edges) {
        if let Some(a) = analyses.iter_mut().find(|a| a.rel_path == f.path) {
            a.findings.push(f);
        }
    }
    analyses.into_iter().flat_map(finalize).collect()
}

/// Checks one file's source in isolation (the lock graph then sees only
/// this file's edges).
pub fn check_source(rel_path: &str, src: &str) -> Vec<Finding> {
    check_sources(&[(rel_path.to_string(), src.to_string())])
}

/// The per-file phase: everything except allow application.
fn analyze(rel_path: &str, src: &str) -> FileAnalysis {
    let mut analysis = FileAnalysis {
        rel_path: rel_path.to_string(),
        test_boundary: u32::MAX,
        findings: Vec::new(),
        allows: Vec::new(),
        lock_edges: Vec::new(),
    };
    if is_test_path(rel_path) {
        return analysis;
    }
    let crate_name = crate_of(rel_path);
    let toks = lex(src);
    analysis.test_boundary = first_cfg_test_line(&toks).unwrap_or(u32::MAX);

    // Split comments (for SAFETY / pragma detection) from code tokens.
    let mut comments: Vec<&Tok> = Vec::new();
    let mut code: Vec<&Tok> = Vec::new();
    for t in &toks {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => comments.push(t),
            _ => code.push(t),
        }
    }

    let findings = &mut analysis.findings;
    collect_pragmas(
        rel_path,
        &comments,
        analysis.test_boundary,
        &mut analysis.allows,
        findings,
    );

    let in_scope = |r: &Rule| match r.crates {
        None => true,
        Some(names) => names.contains(&crate_name),
    };
    if in_scope(must("determinism-time")) {
        determinism_time(rel_path, &code, findings);
    }
    if in_scope(must("determinism-entropy")) {
        determinism_entropy(rel_path, &code, findings);
    }
    if in_scope(must("determinism-hash-iter")) {
        determinism_hash_iter(rel_path, &code, findings);
    }
    if in_scope(must("panic-safety")) {
        panic_safety(rel_path, &code, findings);
    }
    if in_scope(must("unsafe-audit")) {
        unsafe_audit(rel_path, &code, &comments, findings);
    }
    if in_scope(must("metric-grammar")) && rel_path != "crates/core/src/trace.rs" {
        metric_grammar(rel_path, &code, findings);
    }
    if in_scope(must("unsafe-contract")) {
        unsafe_contract(rel_path, &code, &comments, findings);
    }
    if in_scope(must("swallowed-result")) {
        swallowed_result(rel_path, &code, findings);
    }
    if in_scope(must("spawn-audit")) && !SPAWN_AUDIT_EXEMPT_FILES.contains(&rel_path) {
        spawn_audit(rel_path, &code, findings);
    }
    analysis.lock_edges = concurrency(
        crate_name,
        rel_path,
        &code,
        analysis.test_boundary,
        in_scope(must("guard-across-blocking")),
        findings,
    );
    analysis
}

/// The per-file epilogue: drop test-module findings, dedup, apply
/// suppressions, report unused pragmas.
fn finalize(analysis: FileAnalysis) -> Vec<Finding> {
    let FileAnalysis {
        rel_path,
        test_boundary,
        mut findings,
        mut allows,
        ..
    } = analysis;
    findings.retain(|f| f.line < test_boundary);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings.retain(|f| {
        if f.rule == "allow-pragma" {
            return true; // Pragma problems cannot be pragma'd away.
        }
        for a in allows.iter_mut() {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                return false;
            }
        }
        true
    });
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: "allow-pragma",
                path: rel_path.clone(),
                line: a.line,
                message: format!(
                    "unused allow: no `{}` finding on this line or the next",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn must(id: &str) -> &'static Rule {
    // The ID strings above are compile-time members of RULES; a mismatch is
    // a bug in this file and surfaces immediately in every test.
    rule(id).unwrap_or(&RULES[0])
}

/// Whether the path is test-only territory (integration tests, benches,
/// examples): every component is checked so nested dirs count too.
fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// The crate-name scope key: `crates/<name>/...` → `<name>`, anything else
/// (the root facade's `src/`) → "graphalytics".
fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name;
        }
    }
    "graphalytics"
}

/// Line of the first `#[cfg(test)]` attribute, if any.
fn first_cfg_test_line(toks: &[Tok]) -> Option<u32> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for w in code.windows(6) {
        if w[0].is_punct('#')
            && w[1].is_punct('[')
            && w[2].is_ident("cfg")
            && w[3].is_punct('(')
            && w[4].is_ident("test")
            && w[5].is_punct(')')
        {
            return Some(w[0].line);
        }
    }
    None
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, path: &str, line: u32, message: String) {
    findings.push(Finding {
        rule,
        path: path.to_string(),
        line,
        message,
    });
}

fn collect_pragmas(
    path: &str,
    comments: &[&Tok],
    test_boundary: u32,
    allows: &mut Vec<Allow>,
    findings: &mut Vec<Finding>,
) {
    for c in comments {
        if c.line >= test_boundary {
            continue;
        }
        // Only a comment that *is* a pragma counts — prose that merely
        // mentions `lint:allow(...)` (docs, this very file) is ignored.
        let Some(rest) = c.text.trim_start().strip_prefix("lint:allow") else {
            continue;
        };
        let bad = |findings: &mut Vec<Finding>, msg: String| {
            push(findings, "allow-pragma", path, c.line, msg);
        };
        let Some(rest) = rest.strip_prefix('(') else {
            bad(
                findings,
                "malformed pragma: expected `lint:allow(<rule>): <reason>`".to_string(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(findings, "malformed pragma: missing `)`".to_string());
            continue;
        };
        let id = rest[..close].trim();
        let Some(known) = rule(id) else {
            bad(findings, format!("unknown rule `{id}` in allow pragma"));
            continue;
        };
        let tail = &rest[close + 1..];
        let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(
                findings,
                format!("allow pragma for `{id}` must give a reason: `lint:allow({id}): <why>`"),
            );
            continue;
        }
        allows.push(Allow {
            rule: known.id,
            line: c.line,
            used: false,
        });
    }
}

fn determinism_time(path: &str, code: &[&Tok], findings: &mut Vec<Finding>) {
    for w in code.windows(4) {
        if w[0].is_ident("std") && w[1].is_punct(':') && w[2].is_punct(':') && w[3].is_ident("time")
        {
            push(
                findings,
                "determinism-time",
                path,
                w[0].line,
                "std::time in a determinism-scoped crate: outputs must not depend on wall clocks"
                    .to_string(),
            );
        }
    }
    for t in code {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            push(
                findings,
                "determinism-time",
                path,
                t.line,
                format!(
                    "`{}` in a determinism-scoped crate: outputs must not depend on wall clocks",
                    t.text
                ),
            );
        }
    }
}

fn determinism_entropy(path: &str, code: &[&Tok], findings: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
    ];
    for t in code {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            push(
                findings,
                "determinism-entropy",
                path,
                t.line,
                format!(
                    "`{}` draws OS entropy: seed a SplitMix64/Xoshiro256 instead",
                    t.text
                ),
            );
        }
    }
}

const HASH_TYPES: &[&str] = &["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn determinism_hash_iter(path: &str, code: &[&Tok], findings: &mut Vec<Finding>) {
    // Pass 1: names bound to hash-map/set types in this file — via type
    // ascription (`name: [&][mut] FxHashMap<...>`, covering let bindings,
    // fn params, and struct fields) or construction
    // (`name = FxHashMap::default()`).
    let mut hash_names: Vec<&str> = Vec::new();
    let is_hash_ty = |t: &Tok| t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str());
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident {
            continue;
        }
        let name = code[i].text.as_str();
        let mut j = i + 1;
        let sep_colon = code.get(j).is_some_and(|t| t.is_punct(':'))
            && !code.get(j + 1).is_some_and(|t| t.is_punct(':'));
        let sep_eq = code.get(j).is_some_and(|t| t.is_punct('='))
            && !code.get(j + 1).is_some_and(|t| t.is_punct('='));
        if !(sep_colon || sep_eq) {
            continue;
        }
        j += 1;
        while code
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime)
        {
            j += 1;
        }
        if code.get(j).is_some_and(|t| is_hash_ty(t)) && !hash_names.contains(&name) {
            hash_names.push(name);
        }
    }

    // Pass 2: iteration over those names.
    for w in code.windows(4) {
        if w[1].is_punct('.')
            && w[3].is_punct('(')
            && w[0].kind == TokKind::Ident
            && w[2].kind == TokKind::Ident
            && hash_names.contains(&w[0].text.as_str())
            && ITER_METHODS.contains(&w[2].text.as_str())
        {
            push(
                findings,
                "determinism-hash-iter",
                path,
                w[2].line,
                format!(
                    "iterating hash collection `{}` via `.{}()`: hash order is not part of \
                     the determinism contract — sort before ordered output, or allow with \
                     a written order-insensitivity argument",
                    w[0].text, w[2].text
                ),
            );
        }
    }
    // `for x in [&[mut]] name {` — direct IntoIterator over the collection.
    for i in 0..code.len() {
        if !code[i].is_ident("in") {
            continue;
        }
        let mut j = i + 1;
        while code
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            j += 1;
        }
        if let (Some(name_tok), Some(brace)) = (code.get(j), code.get(j + 1)) {
            if name_tok.kind == TokKind::Ident
                && hash_names.contains(&name_tok.text.as_str())
                && brace.is_punct('{')
            {
                push(
                    findings,
                    "determinism-hash-iter",
                    path,
                    name_tok.line,
                    format!(
                        "`for .. in {}` iterates a hash collection: hash order is not part \
                         of the determinism contract",
                        name_tok.text
                    ),
                );
            }
        }
    }
}

fn panic_safety(path: &str, code: &[&Tok], findings: &mut Vec<Finding>) {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `.unwrap()`.
        if t.text == "unwrap"
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            push(
                findings,
                "panic-safety",
                path,
                t.line,
                "`.unwrap()` in a platform crate: propagate PlatformError instead \
                 (a failed run must become a report cell, not a crash)"
                    .to_string(),
            );
        }
        // `.expect(...)` not immediately followed by `?` — the trailing `?`
        // marks a Result-returning parser-combinator `expect`, not
        // `Result::expect`/`Option::expect`.
        if t.text == "expect"
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let mut depth = 0usize;
            let mut j = i + 1;
            while let Some(n) = code.get(j) {
                if n.is_punct('(') {
                    depth += 1;
                } else if n.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            if !code.get(j + 1).is_some_and(|n| n.is_punct('?')) {
                push(
                    findings,
                    "panic-safety",
                    path,
                    t.line,
                    "`.expect(..)` in a platform crate: propagate PlatformError instead, \
                     or allow with a written infallibility argument"
                        .to_string(),
                );
            }
        }
        // panic-family macros.
        if MACROS.contains(&t.text.as_str()) && code.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            push(
                findings,
                "panic-safety",
                path,
                t.line,
                format!(
                    "`{}!` in a platform crate: propagate PlatformError instead",
                    t.text
                ),
            );
        }
    }
}

fn unsafe_audit(path: &str, code: &[&Tok], comments: &[&Tok], findings: &mut Vec<Finding>) {
    for t in code {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Accept a SAFETY comment (bare `SAFETY:` or pinned `SAFETY[..]:`)
        // on the same line, or anywhere inside the contiguous comment block
        // ending on the line directly above (multi-line justifications are
        // the norm for non-trivial blocks).
        let has_safety = |c: &Tok| c.text.contains("SAFETY:") || c.text.contains("SAFETY[");
        let mut documented = comments.iter().any(|c| c.line == t.line && has_safety(c));
        let mut line = t.line;
        while !documented && line > 1 {
            line -= 1;
            let Some(c) = comments.iter().find(|c| c.line == line) else {
                break;
            };
            documented = has_safety(c);
        }
        if !documented {
            push(
                findings,
                "unsafe-audit",
                path,
                t.line,
                "`unsafe` without a `// SAFETY:` comment on the same line or in \
                 the comment block directly above"
                    .to_string(),
            );
        }
    }
}

fn metric_grammar(path: &str, code: &[&Tok], findings: &mut Vec<Finding>) {
    const METRIC_FNS: &[&str] = &[
        "inc_counter",
        "set_gauge",
        "max_gauge",
        "observe",
        "observe_with_buckets",
    ];
    const SPAN_FNS: &[&str] = &["span", "span_with_parent", "event"];
    // Pattern: `. <method> ( "<name>"` — the tracer/registry APIs always
    // take the name as the first argument. Dynamic (non-literal) names are
    // not statically checkable and pass.
    for i in 3..code.len() {
        let name_tok = code[i];
        if name_tok.kind != TokKind::Str
            || !code[i - 1].is_punct('(')
            || code[i - 2].kind != TokKind::Ident
            || !code[i - 3].is_punct('.')
        {
            continue;
        }
        let method = code[i - 2].text.as_str();
        let name = name_tok.text.as_str();
        if METRIC_FNS.contains(&method) && !valid_metric_name(name) {
            push(
                findings,
                "metric-grammar",
                path,
                name_tok.line,
                format!(
                    "metric name \"{name}\" violates the canonical grammar \
                     `graphalytics_[a-z][a-z0-9_]*`"
                ),
            );
        }
        if SPAN_FNS.contains(&method) && !valid_span_name(name) {
            push(
                findings,
                "metric-grammar",
                path,
                name_tok.line,
                format!(
                    "span name \"{name}\" violates the dotted lowercase grammar \
                     `seg(.seg)*` with seg = `[a-z][a-z0-9_]*`"
                ),
            );
        }
    }
}

/// The comment block attached to line `line`: a comment on the line
/// itself, or the contiguous run of comment lines directly above it, in
/// top-down order.
fn attached_comments<'a>(comments: &[&'a Tok], line: u32) -> Vec<&'a Tok> {
    if let Some(c) = comments.iter().find(|c| c.line == line) {
        return vec![c];
    }
    let mut block: Vec<&Tok> = Vec::new();
    let mut l = line;
    while l > 1 {
        l -= 1;
        match comments.iter().find(|c| c.line == l) {
            Some(c) => block.push(c),
            None => break,
        }
    }
    block.reverse();
    block
}

/// `unsafe-contract`: every unsafe extent must carry a pinned
/// `SAFETY[<token-hash>]: <invariant>` proof. The hash covers the code
/// tokens of the extent — editing the guarded code without updating (and
/// therefore re-reviewing) the proof is flagged as a stale contract.
fn unsafe_contract(path: &str, code: &[&Tok], comments: &[&Tok], findings: &mut Vec<Finding>) {
    for ext in unsafe_extents(code) {
        let expected = render_hash(token_hash(code, ext.start, ext.end));
        let block = attached_comments(comments, ext.line);
        let Some(pos) = block.iter().position(|c| c.text.contains("SAFETY")) else {
            push(
                findings,
                "unsafe-contract",
                path,
                ext.line,
                format!(
                    "`unsafe` without a structured proof: add \
                     `// SAFETY[{expected}]: <invariant>` naming what makes this sound"
                ),
            );
            continue;
        };
        let text = &block[pos].text;
        let after = &text[text.find("SAFETY").unwrap_or(0) + "SAFETY".len()..];
        let (pin, rest) = match after.strip_prefix('[') {
            Some(r) => match r.find(']') {
                Some(close) => (Some(r[..close].trim()), &r[close + 1..]),
                None => (Some(""), r),
            },
            None => (None, after),
        };
        let Some(pin) = pin else {
            push(
                findings,
                "unsafe-contract",
                path,
                block[pos].line,
                format!(
                    "unpinned SAFETY comment: pin the proof to the code as \
                     `SAFETY[{expected}]:` so future edits re-trigger review"
                ),
            );
            continue;
        };
        if pin != expected {
            push(
                findings,
                "unsafe-contract",
                path,
                block[pos].line,
                format!(
                    "stale proof: contract pins token hash `{pin}` but the unsafe code \
                     now hashes to `{expected}` — re-review the invariant, then update the pin"
                ),
            );
            continue;
        }
        // Invariant text: the rest of the proof line plus any continuation
        // comment lines below it in the same block.
        let mut invariant = rest.trim_start_matches(':').trim().to_string();
        for c in &block[pos + 1..] {
            if !invariant.is_empty() {
                break;
            }
            invariant = c.text.trim().to_string();
        }
        if invariant.is_empty() {
            push(
                findings,
                "unsafe-contract",
                path,
                block[pos].line,
                "SAFETY contract names no invariant: state what the callers/code \
                 uphold that makes this sound"
                    .to_string(),
            );
        }
    }
}

/// Calls whose `Result` encodes a fault-taxonomy signal: discarding one
/// with `let _ =` turns a detectable fault into silence.
const FALLIBLE_CALLS: &[&str] = &[
    "remove_dir_all",
    "remove_file",
    "create_dir_all",
    "write_all",
    "flush",
    "sync_all",
    "join",
    "send",
    "checkpoint",
    "restore",
    "write_to",
];

fn swallowed_result(path: &str, code: &[&Tok], findings: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if !(code[i].is_ident("let")
            && code.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && code.get(i + 2).is_some_and(|t| t.is_punct('=')))
        {
            continue;
        }
        // Scan the right-hand side to its terminating `;`, looking for a
        // fallible call at any nesting depth.
        let mut depth = 0usize;
        let mut j = i + 3;
        while let Some(t) = code.get(j) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if depth == 0 {
                    break; // Left the enclosing scope: malformed/expression tail.
                }
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                break;
            } else if t.kind == TokKind::Ident
                && FALLIBLE_CALLS.contains(&t.text.as_str())
                && code.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                push(
                    findings,
                    "swallowed-result",
                    path,
                    code[i].line,
                    format!(
                        "`let _ = …` discards the Result of `{}`: the fault taxonomy \
                         loses a signal — handle it, record it, or allow with a written \
                         reason why ignoring is sound",
                        t.text
                    ),
                );
                break;
            }
            j += 1;
        }
    }
}

fn spawn_audit(path: &str, code: &[&Tok], findings: &mut Vec<Finding>) {
    for i in 0..code.len() {
        let t = code[i];
        if !t.is_ident("spawn") || !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && code[i - 1].is_ident("fn") {
            continue; // Defining a sanctioned spawn wrapper, not calling one.
        }
        push(
            findings,
            "spawn-audit",
            path,
            t.line,
            "thread spawned outside the parallel runtime / serve worker pool: \
             determinism-scoped work must run on accounted threads — route it \
             through ThreadPool, or allow with a written reason"
                .to_string(),
        );
    }
}

/// The concurrency pass: builds every function's region model once,
/// emitting `guard-across-blocking` findings and collecting the file's
/// lock-graph edges for the workspace-global `lock-order` phase.
fn concurrency(
    krate: &str,
    path: &str,
    code: &[&Tok],
    test_boundary: u32,
    check_blocking: bool,
    findings: &mut Vec<Finding>,
) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    for func in functions(code) {
        if func.line >= test_boundary {
            continue;
        }
        let regions = fn_regions(code, &func);
        if check_blocking {
            for (a, b) in guards_across_blocking(&regions) {
                push(
                    findings,
                    "guard-across-blocking",
                    path,
                    b.line,
                    format!(
                        "`{}` guard (acquired line {}) is live across blocking `{}`: \
                         every other consumer of the lock stalls behind it — drop or \
                         scope the guard before blocking",
                        a.lock, a.line, b.callee
                    ),
                );
            }
        }
        let live: Vec<Acquire> = regions
            .acquires
            .iter()
            .filter(|a| a.line < test_boundary)
            .cloned()
            .collect();
        edges.extend(lockgraph::fn_edges(krate, path, &live));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_source(path, src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn scope_helpers() {
        assert_eq!(crate_of("crates/datagen/src/rmat.rs"), "datagen");
        assert_eq!(crate_of("src/lib.rs"), "graphalytics");
        assert!(is_test_path("crates/pregel/tests/props.rs"));
        assert!(is_test_path("crates/bench/benches/kernels.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(!is_test_path("crates/pregel/src/engine.rs"));
    }

    #[test]
    fn findings_inside_cfg_test_are_ignored() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   #[cfg(test)]\n\
                   mod tests { fn g() { let t = Instant::now(); } }\n";
        assert_eq!(
            rules_at("crates/datagen/src/x.rs", src),
            vec![("determinism-time", 1)]
        );
    }

    #[test]
    fn platform_scope_is_respected() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            rules_at("crates/pregel/src/x.rs", src),
            vec![("panic-safety", 1)]
        );
        // datagen is outside the panic-safety scope.
        assert_eq!(rules_at("crates/datagen/src/x.rs", src), vec![]);
    }

    #[test]
    fn parser_combinator_expect_is_not_flagged() {
        let src = "fn f(p: &mut P) -> Result<(), E> { p.expect(\"select\")?; Ok(()) }\n";
        assert_eq!(rules_at("crates/columnar/src/x.rs", src), vec![]);
        let bad = "fn f(p: Option<u8>) -> u8 { p.expect(\"present\") }\n";
        assert_eq!(
            rules_at("crates/columnar/src/x.rs", bad),
            vec![("panic-safety", 1)]
        );
    }

    #[test]
    fn allow_pragma_round_trip() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // lint:allow(panic-safety): x is Some by construction above\n\
                   x.unwrap()\n\
                   }\n";
        assert_eq!(rules_at("crates/pregel/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_without_reason_is_itself_a_violation() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // lint:allow(panic-safety)\n\
                   x.unwrap()\n\
                   }\n";
        let got = rules_at("crates/pregel/src/x.rs", src);
        assert!(got.contains(&("allow-pragma", 2)), "{got:?}");
        assert!(got.contains(&("panic-safety", 3)), "{got:?}");
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// lint:allow(panic-safety): nothing here needs it\n\
                   fn f() {}\n";
        assert_eq!(
            rules_at("crates/pregel/src/x.rs", src),
            vec![("allow-pragma", 1)]
        );
    }

    #[test]
    fn unsafe_audit_accepts_safety_comments() {
        let with = "fn f(xs: &[u8]) -> u8 {\n\
                    // SAFETY: idx is bounded by xs.len() above.\n\
                    unsafe { *xs.get_unchecked(0) }\n\
                    }\n";
        assert_eq!(rules_at("crates/core/src/x.rs", with), vec![]);
        let without = "fn f(xs: &[u8]) -> u8 { unsafe { *xs.get_unchecked(0) } }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", without),
            vec![("unsafe-audit", 1)]
        );
    }

    #[test]
    fn hash_iter_tracks_bindings_and_params() {
        let src = "use rustc_hash::FxHashMap;\n\
                   fn f(weight: &mut FxHashMap<u32, f64>) -> Vec<u32> {\n\
                   let mut out: Vec<u32> = weight.keys().copied().collect();\n\
                   out\n\
                   }\n";
        assert_eq!(
            rules_at("crates/algos/src/x.rs", src),
            vec![("determinism-hash-iter", 3)]
        );
        // Plain Vec iteration never fires.
        let vec_src = "fn f(xs: &Vec<u32>) -> usize { xs.iter().count() }\n";
        assert_eq!(rules_at("crates/algos/src/x.rs", vec_src), vec![]);
    }

    #[test]
    fn for_loop_over_hash_collection_fires() {
        let src = "use rustc_hash::FxHashSet;\n\
                   fn f(burned: FxHashSet<u32>) {\n\
                   for b in burned {\n\
                   let _ = b;\n\
                   }\n\
                   }\n";
        assert_eq!(
            rules_at("crates/datagen/src/x.rs", src),
            vec![("determinism-hash-iter", 3)]
        );
    }

    #[test]
    fn metric_and_span_grammar() {
        let src = "fn f(t: &Tracer) {\n\
                   t.metrics().inc_counter(\"gx_runs_total\", &[], 1);\n\
                   let _s = t.span(\"Run.Load\");\n\
                   let _ok = t.span(\"run.load\");\n\
                   t.metrics().observe(\"graphalytics_run_seconds\", &[], 0.1);\n\
                   }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("metric-grammar", 2), ("metric-grammar", 3)]
        );
    }

    #[test]
    fn matches_never_fire_inside_literals_or_comments() {
        let src = "// Instant::now() and unwrap() in a comment\n\
                   fn f() -> &'static str { \"Instant::now() .unwrap() panic!()\" }\n";
        assert_eq!(rules_at("crates/datagen/src/x.rs", src), vec![]);
        assert_eq!(rules_at("crates/pregel/src/x.rs", src), vec![]);
    }

    #[test]
    fn guard_across_blocking_fires_and_is_allowable() {
        let src = "fn f(&self) {\n\
                   let g = self.state.lock();\n\
                   std::thread::sleep(d);\n\
                   }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("guard-across-blocking", 3)]
        );
        let allowed = "fn f(&self) {\n\
                       let g = self.state.lock();\n\
                       // lint:allow(guard-across-blocking): single-threaded setup path\n\
                       std::thread::sleep(d);\n\
                       }\n";
        assert_eq!(rules_at("crates/core/src/x.rs", allowed), vec![]);
    }

    #[test]
    fn lock_order_cycle_spans_files() {
        let a = "fn f(&self) {\n\
                 let g = self.alpha.lock();\n\
                 let h = self.beta.lock();\n\
                 }\n";
        let b = "fn g(&self) {\n\
                 let g = self.beta.lock();\n\
                 let h = self.alpha.lock();\n\
                 }\n";
        let findings = check_sources(&[
            ("crates/core/src/a.rs".to_string(), a.to_string()),
            ("crates/core/src/b.rs".to_string(), b.to_string()),
        ]);
        let got: Vec<(&str, &str, u32)> = findings
            .iter()
            .map(|f| (f.rule, f.path.as_str(), f.line))
            .collect();
        assert_eq!(
            got,
            vec![
                ("lock-order", "crates/core/src/a.rs", 3),
                ("lock-order", "crates/core/src/b.rs", 3),
            ]
        );
        // Each file alone is consistent: no cycle, no findings.
        assert_eq!(rules_at("crates/core/src/a.rs", a), vec![]);
    }

    #[test]
    fn unsafe_contract_pins_proofs() {
        let src_with = |pin: &str| {
            format!(
                "fn f(xs: &[u8]) -> u8 {{\n\
                 // SAFETY[{pin}]: caller guarantees !xs.is_empty().\n\
                 unsafe {{ *xs.get_unchecked(0) }}\n\
                 }}\n"
            )
        };
        let stale = check_source("crates/graph/src/x.rs", &src_with("00000000"));
        assert_eq!(stale.len(), 1);
        assert_eq!((stale[0].rule, stale[0].line), ("unsafe-contract", 2));
        // The message carries the expected hash; pinning it makes the file
        // clean — the mechanical fix the diagnostic prescribes.
        let expected = stale[0].message.split('`').nth(3).unwrap().to_string();
        assert_eq!(expected.len(), 8, "{}", stale[0].message);
        assert_eq!(rules_at("crates/graph/src/x.rs", &src_with(&expected)), []);
    }

    #[test]
    fn unsafe_contract_requires_structure_and_invariant() {
        // Bare SAFETY: passes unsafe-audit but not the pinned contract.
        let bare = "fn f(xs: &[u8]) -> u8 {\n\
                    // SAFETY: fine.\n\
                    unsafe { *xs.get_unchecked(0) }\n\
                    }\n";
        assert_eq!(
            rules_at("crates/parallel/src/x.rs", bare),
            vec![("unsafe-contract", 2)]
        );
        // No comment at all: both the audit and the contract fire.
        let none = "fn f(xs: &[u8]) -> u8 { unsafe { *xs.get_unchecked(0) } }\n";
        let got = rules_at("crates/parallel/src/x.rs", none);
        assert!(got.contains(&("unsafe-audit", 1)), "{got:?}");
        assert!(got.contains(&("unsafe-contract", 1)), "{got:?}");
        // Outside the contract scope, bare SAFETY: still suffices.
        assert_eq!(rules_at("crates/serve/src/x.rs", bare), vec![]);
    }

    #[test]
    fn swallowed_result_catches_discards() {
        let src = "fn f(h: Handle) {\n\
                   let _ = h.join();\n\
                   let _ = x + 1;\n\
                   }\n";
        assert_eq!(
            rules_at("crates/mapreduce/src/x.rs", src),
            vec![("swallowed-result", 2)]
        );
        // Out of scope: algos is not a fault-taxonomy crate.
        assert_eq!(rules_at("crates/algos/src/x.rs", src), vec![]);
    }

    #[test]
    fn spawn_audit_scopes_and_exemptions() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_at("crates/datagen/src/x.rs", src),
            vec![("spawn-audit", 1)]
        );
        // The pool implementations are exempt wholesale.
        assert_eq!(rules_at("crates/parallel/src/lib.rs", src), vec![]);
        // Platform crates are outside the determinism scope.
        assert_eq!(rules_at("crates/pregel/src/x.rs", src), vec![]);
        // Defining a spawn wrapper is not a call.
        let def = "fn spawn(f: impl FnOnce()) { f() }\n";
        assert_eq!(rules_at("crates/datagen/src/x.rs", def), vec![]);
    }
}
