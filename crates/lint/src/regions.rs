//! The per-function region model: lock-guard live ranges and blocking
//! call sites.
//!
//! This is deliberately a *syntactic* approximation of Rust's drop
//! semantics — precise enough for the two rules built on it
//! (`lock-order`, `guard-across-blocking`) to have caught every real
//! instance in this workspace, cheap enough to run on every file on
//! every commit:
//!
//! * A guard bound with `let g = x.lock();` lives from the acquisition
//!   to the end of the enclosing block, clipped at an explicit
//!   `drop(g)`.
//! * An unbound (temporary) guard lives to the end of its statement: the
//!   next `;` at the statement's depth — or, when the acquisition sits
//!   in an `if let`/`while let`/`match` head, through the construct's
//!   block (Rust extends scrutinee temporaries exactly that far).
//! * Lock identity is the normalized receiver path (`self.inner.lock()`
//!   → `inner`), crate-qualified by the caller. Same-named fields within
//!   one crate alias to the same lock node — an over-approximation that
//!   is correct for this workspace's one-mutex-per-struct style and errs
//!   toward reporting.

use crate::lexer::{Tok, TokKind};
use crate::parse::{matching_close, Func};

/// Method/function names treated as lock acquisitions producing a guard.
/// `.lock()` covers `std::sync::Mutex`, the vendored `parking_lot` shim,
/// and guard-returning helpers like `JobStore::lock`; free `lock(&m)`
/// covers the poison-tolerant helper idiom in `crates/faults`.
const ACQUIRE_METHODS: &[&str] = &["lock"];

/// Calls that block the calling thread. A guard live across one of these
/// serializes every other consumer of that lock behind I/O, a timer, or
/// another thread's progress.
const BLOCKING_CALLS: &[&str] = &[
    "sleep",          // std::thread::sleep
    "park",           // std::thread::park
    "join",           // JoinHandle::join
    "recv",           // channel receive
    "recv_timeout",   // channel receive with deadline
    "wait",           // Condvar::wait (exempt on its own guard)
    "wait_timeout",   // Condvar::wait_timeout (same exemption)
    "wait_while",     // Condvar::wait_while (same exemption)
    "accept",         // TcpListener::accept
    "connect",        // TcpStream::connect
    "read_to_string", // blocking reads
    "read_to_end",
    "read_line",
    "read_exact",
    "write_all", // blocking writes
    "flush",
];

/// Condvar-family waits, which *consume* their own lock's guard — holding
/// that guard at the call is the API working as designed, not a bug.
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// One lock acquisition and the live range of the guard it produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquire {
    /// Normalized lock identity (receiver path minus `self.`).
    pub lock: String,
    /// Guard binding name, `None` for statement temporaries.
    pub name: Option<String>,
    /// Index (into the code token vector) of the acquiring call name.
    pub at: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Last code-token index at which the guard is considered live.
    pub live_end: usize,
}

/// One blocking call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingCall {
    /// The blocking method/function name.
    pub callee: String,
    /// Index of the callee name token.
    pub at: usize,
    /// 1-based line.
    pub line: u32,
    /// Identifier arguments (for the condvar-wait guard exemption).
    pub args: Vec<String>,
}

/// The region model of one function body.
#[derive(Debug, Clone, Default)]
pub struct FnRegions {
    /// Lock acquisitions, in source order.
    pub acquires: Vec<Acquire>,
    /// Blocking call sites, in source order.
    pub blocking: Vec<BlockingCall>,
}

/// Builds the region model for `func`'s body (empty model for bodyless
/// declarations).
pub fn fn_regions(code: &[&Tok], func: &Func) -> FnRegions {
    let Some((open, close)) = func.body else {
        return FnRegions::default();
    };
    let mut regions = FnRegions::default();
    for i in open + 1..close {
        if code[i].kind != TokKind::Ident {
            continue;
        }
        let name = code[i].text.as_str();
        let is_call = code.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !is_call {
            continue;
        }
        // A definition (`fn lock(`) is not a call site.
        if i > 0 && code[i - 1].is_ident("fn") {
            continue;
        }
        if ACQUIRE_METHODS.contains(&name) {
            if let Some(acquire) = classify_acquire(code, i, open, close) {
                regions.acquires.push(acquire);
            }
        }
        if BLOCKING_CALLS.contains(&name) {
            let args_end = matching_close(code, i + 1);
            let args = code[i + 1..args_end]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect();
            regions.blocking.push(BlockingCall {
                callee: name.to_string(),
                at: i,
                line: code[i].line,
                args,
            });
        }
    }
    regions
}

/// The `guard-across-blocking` judgments for one function: every
/// (acquisition, blocking-site) pair where the guard is live at the call,
/// minus the condvar exemption.
pub fn guards_across_blocking(
    regions: &FnRegions,
) -> impl Iterator<Item = (&Acquire, &BlockingCall)> {
    regions.acquires.iter().flat_map(move |a| {
        regions
            .blocking
            .iter()
            .filter(move |b| {
                if b.at <= a.at || b.at > a.live_end {
                    return false;
                }
                // Condvar waits consume their own guard: exempt when the
                // live guard is the one being handed over.
                if CONDVAR_WAITS.contains(&b.callee.as_str()) {
                    if let Some(name) = &a.name {
                        if b.args.contains(name) {
                            return false;
                        }
                    }
                }
                true
            })
            .map(move |b| (a, b))
    })
}

/// Classifies one `lock(`-shaped call site into an [`Acquire`].
fn classify_acquire(code: &[&Tok], at: usize, open: usize, close: usize) -> Option<Acquire> {
    let lock = if at > 0 && code[at - 1].is_punct('.') {
        receiver_path(code, at - 1)
    } else {
        // Free-function form `lock(&self.x)`: identity from the argument.
        let args_end = matching_close(code, at + 1);
        let path: Vec<&str> = code[at + 2..args_end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
            .map(|t| t.text.as_str())
            .collect();
        normalize_path(&path)
    };
    let lock = lock?;
    // `stdout().lock()` & friends are std's I/O handle locks, not
    // ordering-sensitive mutexes — holding one across a write is the point.
    if ["stdout()", "stderr()", "stdin()"]
        .iter()
        .any(|h| lock.contains(h))
    {
        return None;
    }
    let stmt_start = statement_start(code, at, open);
    let (name, live_end) = match binding_name(code, stmt_start, at) {
        Some(name) => {
            // Named guard: live to the end of the enclosing block, or an
            // explicit `drop(name)`.
            let block_end = enclosing_block_end(code, at, close);
            let mut end = block_end;
            let mut j = at;
            while j + 3 <= block_end {
                if code[j].is_ident("drop")
                    && code[j + 1].is_punct('(')
                    && code[j + 2].is_ident(&name)
                    && code[j + 3].is_punct(')')
                {
                    end = j;
                    break;
                }
                j += 1;
            }
            (Some(name), end)
        }
        None => (None, temporary_end(code, stmt_start, at, close)),
    };
    Some(Acquire {
        lock,
        name,
        at,
        line: code[at].line,
        live_end,
    })
}

/// Walks back from the `.` before an acquiring method, collecting the
/// receiver's dotted identifier path (`self.inner.lock()` → `inner`;
/// `thread_registry().lock()` → `thread_registry()`).
fn receiver_path(code: &[&Tok], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        if i == 0 {
            break;
        }
        i -= 1;
        let t = code[i];
        if t.kind == TokKind::Ident {
            parts.push(t.text.clone());
            // Continue only through a `.` (a dotted path) — `::` paths,
            // indexing, and calls end the simple chain.
            if i == 0 || !code[i - 1].is_punct('.') {
                break;
            }
            i -= 1; // The `.`; loop continues to the ident before it.
        } else if t.is_punct(')') {
            // A call in the chain: skip its balanced parens and take the
            // callee ident, spelled `name()` in the identity.
            let mut depth = 0usize;
            let mut j = i;
            loop {
                if code[j].is_punct(')') {
                    depth += 1;
                } else if code[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j == 0 || code[j - 1].kind != TokKind::Ident {
                return None;
            }
            parts.push(format!("{}()", code[j - 1].text));
            if j < 2 || !code[j - 2].is_punct('.') {
                break;
            }
            i = j - 1; // Fake position so the decrement lands on the `.`.
        } else {
            break;
        }
    }
    parts.reverse();
    let parts: Vec<&str> = parts.iter().map(String::as_str).collect();
    normalize_path(&parts)
}

/// Drops a leading `self` and joins what remains; a bare `self` receiver
/// (guard-returning helper methods) keeps the name `self`.
fn normalize_path(parts: &[&str]) -> Option<String> {
    if parts.is_empty() {
        return None;
    }
    let rest: Vec<&str> = if parts.len() > 1 && parts[0] == "self" {
        parts[1..].to_vec()
    } else {
        parts.to_vec()
    };
    Some(rest.join("."))
}

/// Index of the first token of the statement containing `at`: one past
/// the previous `;`, `{`, or `}`, scanning back no further than the body
/// open brace.
fn statement_start(code: &[&Tok], at: usize, open: usize) -> usize {
    let mut i = at;
    while i > open + 1 {
        let t = code[i - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        i -= 1;
    }
    i
}

/// If the statement is `let [mut] NAME = ...` with the acquisition on the
/// right of the `=`, returns NAME.
fn binding_name(code: &[&Tok], stmt_start: usize, at: usize) -> Option<String> {
    let mut i = stmt_start;
    if !code.get(i)?.is_ident("let") {
        return None;
    }
    i += 1;
    if code.get(i)?.is_ident("mut") {
        i += 1;
    }
    let name = code.get(i)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let eq = code.get(i + 1)?;
    if !eq.is_punct('=') || i + 1 >= at {
        return None;
    }
    Some(name.text.clone())
}

/// End of a temporary guard's life. For `if`/`while`/`match` heads the
/// scrutinee temporary lives through the construct's first block (and any
/// `else` continuation); otherwise to the statement's `;` or, failing
/// that, the end of the enclosing block.
fn temporary_end(code: &[&Tok], stmt_start: usize, at: usize, close: usize) -> usize {
    let head = code[stmt_start].text.as_str();
    if matches!(head, "if" | "while" | "match") {
        // Find the construct's block: first `{` at paren depth 0 after
        // the acquisition, then its matching `}`, then any else-chain.
        let mut paren = 0usize;
        let mut i = at;
        while i < close {
            let t = code[i];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && t.is_punct('{') {
                let mut end = matching_close(code, i);
                while code.get(end + 1).is_some_and(|t| t.is_ident("else")) {
                    let mut j = end + 2;
                    while j < close && !code[j].is_punct('{') {
                        j += 1;
                    }
                    if j >= close {
                        break;
                    }
                    end = matching_close(code, j);
                }
                return end.min(close);
            }
            i += 1;
        }
        return close;
    }
    // Plain statement: scan to the `;` at the statement's brace depth;
    // nested blocks (closure bodies, match arms in the RHS) are skipped
    // balanced.
    let mut depth = 0usize;
    let mut i = at;
    while i < close {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return i; // Left the enclosing block: expression tail.
            }
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return i;
        }
        i += 1;
    }
    close
}

/// Index of the `}` closing the innermost block containing `at`.
fn enclosing_block_end(code: &[&Tok], at: usize, close: usize) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < close {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        }
        i += 1;
    }
    close
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokKind};
    use crate::parse::functions;

    fn model(src: &str) -> FnRegions {
        let toks: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        let code: Vec<&Tok> = toks.iter().collect();
        let fns = functions(&code);
        assert_eq!(fns.len(), 1, "test sources hold exactly one fn");
        fn_regions(&code, &fns[0])
    }

    #[test]
    fn named_guard_lives_to_block_end() {
        let m = model(
            "fn f(&self) {\n\
             let g = self.inner.lock();\n\
             std::thread::sleep(d);\n\
             }\n",
        );
        assert_eq!(m.acquires.len(), 1);
        assert_eq!(m.acquires[0].lock, "inner");
        assert_eq!(m.acquires[0].name.as_deref(), Some("g"));
        let pairs: Vec<_> = guards_across_blocking(&m).collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1.callee, "sleep");
    }

    #[test]
    fn drop_clips_the_live_range() {
        let m = model(
            "fn f(&self) {\n\
             let g = self.inner.lock();\n\
             drop(g);\n\
             std::thread::sleep(d);\n\
             }\n",
        );
        assert_eq!(guards_across_blocking(&m).count(), 0);
    }

    #[test]
    fn inner_block_scopes_the_guard() {
        let m = model(
            "fn f(&self) {\n\
             { let g = self.inner.lock(); g.push(1); }\n\
             std::thread::sleep(d);\n\
             }\n",
        );
        assert_eq!(guards_across_blocking(&m).count(), 0);
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let m = model(
            "fn f(&self) {\n\
             self.inner.lock().push(1);\n\
             handle.join();\n\
             }\n",
        );
        assert_eq!(m.acquires.len(), 1);
        assert_eq!(m.acquires[0].name, None);
        assert_eq!(guards_across_blocking(&m).count(), 0);
    }

    #[test]
    fn if_let_scrutinee_temporary_spans_the_block() {
        let m = model(
            "fn f(&self) {\n\
             if let Some(v) = self.graphs.lock().get(k) {\n\
             handle.join();\n\
             }\n\
             handle.join();\n\
             }\n",
        );
        // Live through the if-block (first join) but not past it.
        let pairs: Vec<_> = guards_across_blocking(&m).collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1.line, 3);
    }

    #[test]
    fn condvar_wait_on_own_guard_is_exempt() {
        let m = model(
            "fn f(&self) {\n\
             let mut inner = self.lock();\n\
             loop { inner = self.wakeup.wait(inner); }\n\
             }\n",
        );
        assert_eq!(m.acquires.len(), 1);
        assert_eq!(m.acquires[0].lock, "self");
        assert_eq!(guards_across_blocking(&m).count(), 0);
    }

    #[test]
    fn condvar_wait_on_foreign_lock_fires() {
        let m = model(
            "fn f(&self) {\n\
             let g = self.jobs.lock();\n\
             let h = self.cv.wait(other);\n\
             }\n",
        );
        let pairs: Vec<_> = guards_across_blocking(&m).collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.lock, "jobs");
    }

    #[test]
    fn free_fn_lock_identity_comes_from_the_argument() {
        let m = model(
            "fn f(&self) {\n\
             let g = lock(&self.recoveries);\n\
             }\n",
        );
        assert_eq!(m.acquires.len(), 1);
        assert_eq!(m.acquires[0].lock, "recoveries");
    }

    #[test]
    fn call_receivers_are_normalized() {
        let m = model(
            "fn f() {\n\
             let g = thread_registry().lock();\n\
             }\n",
        );
        assert_eq!(m.acquires[0].lock, "thread_registry()");
    }
}
