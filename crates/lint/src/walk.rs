//! Workspace file discovery: every `.rs` file the invariants govern, in a
//! deterministic (sorted) order.

use std::io;
use std::path::{Path, PathBuf};

/// Directories never linted:
/// * `target`, `.git` — build/VCS artifacts;
/// * `vendor` — offline shims that mimic *external* crates' APIs (they
///   intentionally use `std::collections::HashMap` etc. under foreign
///   names and carry their own conventions);
/// * `results` — generated output;
/// * `crates/lint/tests/fixtures` — sources with violations on purpose.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", "results", "fixtures"];

/// Collects workspace-relative paths (with `/` separators) of every `.rs`
/// file under `root`, skipping [`SKIP_DIRS`].
pub fn rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    visit(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            visit(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_fixture_and_vendor_dirs() {
        let dir = std::env::temp_dir().join(format!("gx-lint-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for sub in ["src", "vendor/fake/src", "tests/fixtures", "target/debug"] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
        }
        std::fs::write(dir.join("src/lib.rs"), "").unwrap();
        std::fs::write(dir.join("vendor/fake/src/lib.rs"), "").unwrap();
        std::fs::write(dir.join("tests/fixtures/bad.rs"), "").unwrap();
        std::fs::write(dir.join("target/debug/junk.rs"), "").unwrap();
        let files = rust_files(&dir).unwrap();
        assert_eq!(files, vec!["src/lib.rs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
