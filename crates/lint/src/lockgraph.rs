//! The workspace lock-acquisition graph and its cycle check.
//!
//! Each function's region model contributes directed edges: `A → B`
//! whenever lock `B` is acquired while a guard for lock `A` is still
//! live. Lock identity is crate-qualified (`serve:inner`), so two crates'
//! same-named fields never alias; within a crate, same-named fields *do*
//! alias, which over-approximates toward reporting — the right direction
//! for a deadlock check.
//!
//! A cycle in the accumulated graph (including a self-loop, which is a
//! re-entrant acquisition of a non-reentrant mutex) is potential
//! deadlock: two threads walking the cycle from different entry points
//! can each hold the lock the other wants. The check is workspace-wide
//! but intra-procedural per edge — it sees `A` held while `B.lock()` is
//! called in the *same function body*. Cross-function nesting (helper
//! acquires `B` while the caller holds `A`) needs interprocedural
//! analysis and is out of scope; the sanitizer CI tier covers that
//! dynamically.

use crate::check::Finding;
use crate::regions::Acquire;

/// One `A → B` acquisition edge with the source position of the inner
/// acquisition (where the diagnostic points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Crate-qualified identity of the lock already held.
    pub held: String,
    /// Crate-qualified identity of the lock being acquired.
    pub acquired: String,
    /// File of the inner acquisition.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// Derives the nested-acquisition edges of one function's region model.
/// `krate` qualifies lock identities; `path` labels the edge sites.
pub fn fn_edges(krate: &str, path: &str, acquires: &[Acquire]) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    for outer in acquires {
        for inner in acquires {
            if inner.at <= outer.at || inner.at > outer.live_end {
                continue;
            }
            edges.push(LockEdge {
                held: format!("{krate}:{}", outer.lock),
                acquired: format!("{krate}:{}", inner.lock),
                path: path.to_string(),
                line: inner.line,
            });
        }
    }
    edges
}

/// Checks the accumulated workspace graph for cycles and emits one
/// `lock-order` finding per edge site that participates in one, naming
/// the full cycle so the report is actionable without re-deriving it.
pub fn check_cycles(edges: &[LockEdge]) -> Vec<Finding> {
    // Adjacency over deduplicated node pairs; sites kept per pair so every
    // source location in a cycle gets its own diagnostic.
    let mut names: Vec<String> = Vec::new();
    let index_of = |names: &mut Vec<String>, name: &str| -> usize {
        if let Some(i) = names.iter().position(|n| n == name) {
            i
        } else {
            names.push(name.to_string());
            names.len() - 1
        }
    };
    type Sites<'a> = Vec<(&'a str, u32)>;
    let mut adj: Vec<Vec<usize>> = Vec::new();
    let mut pair_sites: Vec<((usize, usize), Sites)> = Vec::new();
    for e in edges {
        let u = index_of(&mut names, &e.held);
        let v = index_of(&mut names, &e.acquired);
        while adj.len() < names.len() {
            adj.push(Vec::new());
        }
        if !adj[u].contains(&v) {
            adj[u].push(v);
        }
        match pair_sites.iter_mut().find(|(p, _)| *p == (u, v)) {
            Some((_, sites)) => {
                if !sites.contains(&(e.path.as_str(), e.line)) {
                    sites.push((e.path.as_str(), e.line));
                }
            }
            None => pair_sites.push(((u, v), vec![(e.path.as_str(), e.line)])),
        }
    }
    let n = names.len();
    // Edge (u, v) lies on a cycle iff v can reach u.
    let mut findings = Vec::new();
    for &((u, v), ref sites) in &pair_sites {
        if !reaches(&adj, n, v, u) {
            continue;
        }
        let cycle = cycle_path(&adj, u, v);
        let rendered = cycle
            .iter()
            .map(|&i| names[i].as_str())
            .collect::<Vec<_>>()
            .join(" -> ");
        for (path, line) in sites {
            findings.push(Finding {
                rule: "lock-order",
                path: (*path).to_string(),
                line: *line,
                message: format!(
                    "acquiring `{}` while holding `{}` closes a lock cycle ({rendered}); \
                     acquire locks in one global order or narrow the outer guard",
                    names[v], names[u]
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// Reachability `from → to` (true also when `from == to` via any cycle
/// through it — but we only call it with `from = v, to = u` for an
/// existing edge `u → v`, so self-loops resolve as `v` reaching itself).
fn reaches(adj: &[Vec<usize>], n: usize, from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(x) = stack.pop() {
        for &y in &adj[x] {
            if y == to {
                return true;
            }
            if !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    false
}

/// Reconstructs one cycle through edge `u → v` for the diagnostic,
/// rendered `u -> v -> ... -> u`: the edge itself plus a shortest BFS
/// path from `v` back to `u`.
fn cycle_path(adj: &[Vec<usize>], u: usize, v: usize) -> Vec<usize> {
    if u == v {
        return vec![u, u];
    }
    let n = adj.len();
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::from([v]);
    let mut seen = vec![false; n];
    seen[v] = true;
    'bfs: while let Some(x) = queue.pop_front() {
        for &y in &adj[x] {
            if !seen[y] {
                seen[y] = true;
                parent[y] = x;
                if y == u {
                    break 'bfs;
                }
                queue.push_back(y);
            }
        }
    }
    // Walk the parent chain u → … → v, then flip it into v → … → u and
    // prefix the starting node.
    let mut back = vec![u];
    let mut x = u;
    while x != v && parent[x] != usize::MAX {
        x = parent[x];
        back.push(x);
    }
    back.reverse(); // Now v → … → u.
    let mut cycle = vec![u];
    cycle.extend(back);
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(held: &str, acquired: &str, line: u32) -> LockEdge {
        LockEdge {
            held: held.to_string(),
            acquired: acquired.to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line,
        }
    }

    #[test]
    fn consistent_order_is_clean() {
        let edges = vec![edge("x:a", "x:b", 10), edge("x:a", "x:b", 20)];
        assert!(check_cycles(&edges).is_empty());
    }

    #[test]
    fn two_lock_cycle_flags_both_sites() {
        let edges = vec![edge("x:a", "x:b", 10), edge("x:b", "x:a", 30)];
        let f = check_cycles(&edges);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "lock-order");
        assert_eq!((f[0].line, f[1].line), (10, 30));
        assert!(f[0].message.contains("x:a"), "{}", f[0].message);
        assert!(f[0].message.contains("x:b"), "{}", f[0].message);
    }

    #[test]
    fn self_loop_is_reentrant_deadlock() {
        let edges = vec![edge("x:a", "x:a", 7)];
        let f = check_cycles(&edges);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn cross_crate_names_do_not_alias() {
        let edges = vec![edge("x:a", "x:b", 10), edge("y:b", "y:a", 30)];
        assert!(check_cycles(&edges).is_empty());
    }

    #[test]
    fn fn_edges_respect_live_ranges() {
        use crate::regions::Acquire;
        let acquires = vec![
            Acquire {
                lock: "a".into(),
                name: Some("g".into()),
                at: 5,
                line: 2,
                live_end: 20,
            },
            Acquire {
                lock: "b".into(),
                name: None,
                at: 10,
                line: 3,
                live_end: 15,
            },
            Acquire {
                lock: "c".into(),
                name: None,
                at: 30,
                line: 9,
                live_end: 35,
            },
        ];
        let edges = fn_edges("x", "p.rs", &acquires);
        // a→b (nested) and b is not live at c, a is not live at c.
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].held, "x:a");
        assert_eq!(edges[0].acquired, "x:b");
        assert_eq!(edges[0].line, 3);
    }
}
