//! The `lint` binary: `cargo run -p graphalytics-lint -- check [--json]`.
//!
//! Exit status: 0 when the workspace is clean, 1 on violations, 2 on usage
//! or I/O errors — so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

use graphalytics_lint::{
    check_workspace, find_workspace_root, report_json, rules, summary_markdown,
};

const USAGE: &str = "\
graphalytics-lint — workspace invariant checker

USAGE:
    lint check [--json] [--root <dir>] [--summary-out <file>]
                                          check every governed .rs file
    lint rules                            list rules with their rationale

--json emits the graphalytics-lint/2 report envelope (tool catalog,
per-rule counts, findings); --summary-out appends a markdown per-rule
violation table to <file> (CI points it at $GITHUB_STEP_SUMMARY).

Exit status: 0 clean, 1 violations found, 2 usage/IO error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check_cmd(&args[1..]),
        Some("rules") => {
            for r in rules::RULES {
                let scope = match r.crates {
                    None => "all crates".to_string(),
                    Some(names) => names.join(", "),
                };
                println!("{:<22} [{scope}]\n    {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check_cmd(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut summary_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--summary-out" => match it.next() {
                Some(file) => summary_out = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--summary-out requires a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let findings = match check_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint failed to read workspace: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            println!("lint: workspace clean ({} rules)", rules::RULES.len());
        } else {
            println!("lint: {} violation(s)", findings.len());
        }
    }
    if let Some(path) = summary_out {
        // Append, not truncate: $GITHUB_STEP_SUMMARY accumulates sections
        // from every step in the job.
        use std::io::Write;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(summary_markdown(&findings).as_bytes()));
        if let Err(e) = appended {
            eprintln!("cannot write summary to {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
