//! `graphalytics-lint` — the workspace invariant checker.
//!
//! Graphalytics' credibility rests on reproducible, validated runs: the
//! choke-point methodology needs deterministic datagen, the harness needs
//! platform failures to surface as report cells rather than crashes, and
//! the observability layer needs a single metric namespace. This crate
//! *enforces* those invariants as named lints over every `.rs` file in the
//! workspace, using a string/char/comment-aware lexer so matches never fire
//! inside literals or doc comments — and, since the concurrency surface
//! grew (unsafe scatter in `parallel`, the Mutex/Condvar job store in
//! `serve`), a lightweight semantic layer on top: an item/block parser
//! ([`parse`]), per-function lock-guard live ranges and blocking-call
//! sites ([`regions`]), and a workspace-global lock-acquisition graph
//! ([`lockgraph`]).
//!
//! Rules (see [`rules::RULES`] and DESIGN.md §8 for rationale):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `determinism-time` | determinism crates | no wall clocks |
//! | `determinism-entropy` | all crates | only seeded RNG constructors |
//! | `determinism-hash-iter` | determinism crates | hash iteration is order-insensitive or sorted |
//! | `panic-safety` | platform crates | no `unwrap`/`expect`/`panic!` |
//! | `unsafe-audit` | all crates | every `unsafe` carries `// SAFETY:` |
//! | `metric-grammar` | all crates | canonical metric/span names |
//! | `allow-pragma` | all crates | well-formed, used, reasoned allows |
//! | `lock-order` | all crates | the lock-acquisition graph is acyclic |
//! | `guard-across-blocking` | all crates | no guard live across a blocking call |
//! | `unsafe-contract` | parallel, columnar, graph | pinned `SAFETY[hash]:` proofs |
//! | `swallowed-result` | platforms, serve, faults | no `let _ =` on fallible calls |
//! | `spawn-audit` | determinism crates | threads come from sanctioned pools |
//!
//! Escape hatch: `// lint:allow(<rule>): <reason>` on the offending line or
//! the line above suppresses one rule there; the reason is mandatory and an
//! allow that suppresses nothing is itself an error — annotations cannot
//! rot silently.
//!
//! Run it: `cargo run -p graphalytics-lint -- check [--json]`.

pub mod check;
pub mod lexer;
pub mod lockgraph;
pub mod parse;
pub mod regions;
pub mod rules;
pub mod walk;

pub use check::{check_source, check_sources, Finding};

use std::io;
use std::path::Path;

/// Checks every governed `.rs` file under `root` (the workspace root) as
/// one unit — the lock-acquisition graph spans all of them — and returns
/// all findings, sorted by path then line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for rel in walk::rust_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, src));
    }
    let mut findings = check_sources(&files);
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// Locates the workspace root by walking up from `start` until a directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a bare JSON array (one object per finding) — the
/// `findings` member of [`report_json`], kept public for tooling that
/// wants just the list.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
    }
    out.push_str("\n]\n");
    out
}

/// The machine-readable report envelope (`lint check --json`), a
/// SARIF-inspired shape CI consumes for annotations:
///
/// ```json
/// {
///   "schema": "graphalytics-lint/2",
///   "tool": {"name": "...", "version": "...", "rules": [{"id", "scope", "summary"}]},
///   "counts": {"<rule>": <n>, ...},
///   "findings": [{"rule", "path", "line", "message"}, ...]
/// }
/// ```
///
/// `counts` holds one member per rule with at least one finding, in rule
/// catalog order; a clean workspace renders `"counts": {}`.
pub fn report_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"graphalytics-lint/2\",\n");
    out.push_str(&format!(
        "  \"tool\": {{\"name\": \"graphalytics-lint\", \"version\": \"{}\", \"rules\": [",
        env!("CARGO_PKG_VERSION")
    ));
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let scope = match r.crates {
            None => "all".to_string(),
            Some(names) => names.join(","),
        };
        out.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"scope\": \"{}\", \"summary\": \"{}\"}}",
            r.id,
            esc(&scope),
            esc(r.summary)
        ));
    }
    out.push_str("\n  ]},\n");
    out.push_str("  \"counts\": {");
    let mut first = true;
    for r in rules::RULES {
        let n = findings.iter().filter(|f| f.rule == r.id).count();
        if n == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{}\": {n}", r.id));
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": ");
    let list = findings_to_json(findings);
    out.push_str(list.trim_end());
    out.push_str("\n}\n");
    out
}

/// Markdown per-rule violation summary for the CI job summary
/// (`lint check --summary-out $GITHUB_STEP_SUMMARY`).
pub fn summary_markdown(findings: &[Finding]) -> String {
    let mut out = String::from("### graphalytics-lint\n\n");
    if findings.is_empty() {
        out.push_str(&format!(
            "workspace clean — {} rules, 0 violations\n",
            rules::RULES.len()
        ));
        return out;
    }
    out.push_str("| rule | violations |\n|------|-----------:|\n");
    for r in rules::RULES {
        let n = findings.iter().filter(|f| f.rule == r.id).count();
        if n > 0 {
            out.push_str(&format!("| `{}` | {n} |\n", r.id));
        }
    }
    out.push_str(&format!("\n**total: {}**\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_escapes() {
        let findings = vec![Finding {
            rule: "panic-safety",
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: "a \"quoted\" message".to_string(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn report_envelope_carries_counts_and_catalog() {
        let findings = vec![
            Finding {
                rule: "panic-safety",
                path: "crates/x/src/a.rs".to_string(),
                line: 3,
                message: "m".to_string(),
            },
            Finding {
                rule: "panic-safety",
                path: "crates/x/src/b.rs".to_string(),
                line: 9,
                message: "m".to_string(),
            },
            Finding {
                rule: "lock-order",
                path: "crates/x/src/a.rs".to_string(),
                line: 4,
                message: "m".to_string(),
            },
        ];
        let json = report_json(&findings);
        assert!(
            json.contains("\"schema\": \"graphalytics-lint/2\""),
            "{json}"
        );
        assert!(json.contains("\"panic-safety\": 2"), "{json}");
        assert!(json.contains("\"lock-order\": 1"), "{json}");
        // Every catalog rule is described.
        for r in rules::RULES {
            assert!(json.contains(&format!("\"id\": \"{}\"", r.id)), "{}", r.id);
        }
        // Clean runs render an empty counts object.
        assert!(report_json(&[]).contains("\"counts\": {}"));
    }

    #[test]
    fn summary_lists_only_violated_rules() {
        let findings = vec![Finding {
            rule: "spawn-audit",
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: "m".to_string(),
        }];
        let md = summary_markdown(&findings);
        assert!(md.contains("| `spawn-audit` | 1 |"), "{md}");
        assert!(!md.contains("`panic-safety`"), "{md}");
        assert!(md.contains("**total: 1**"), "{md}");
        assert!(summary_markdown(&[]).contains("workspace clean"));
    }

    #[test]
    fn workspace_root_discovery_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint/Cargo.toml").exists());
    }
}
