//! `graphalytics-lint` — the workspace invariant checker.
//!
//! Graphalytics' credibility rests on reproducible, validated runs: the
//! choke-point methodology needs deterministic datagen, the harness needs
//! platform failures to surface as report cells rather than crashes, and
//! the observability layer needs a single metric namespace. This crate
//! *enforces* those invariants as named lints over every `.rs` file in the
//! workspace, using a string/char/comment-aware lexer so matches never fire
//! inside literals or doc comments.
//!
//! Rules (see [`rules::RULES`] and DESIGN.md §8 for rationale):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `determinism-time` | datagen, algos, graph | no wall clocks |
//! | `determinism-entropy` | all crates | only seeded RNG constructors |
//! | `determinism-hash-iter` | datagen, algos, graph | hash iteration is order-insensitive or sorted |
//! | `panic-safety` | platform crates | no `unwrap`/`expect`/`panic!` |
//! | `unsafe-audit` | all crates | every `unsafe` carries `// SAFETY:` |
//! | `metric-grammar` | all crates | canonical metric/span names |
//! | `allow-pragma` | all crates | well-formed, used, reasoned allows |
//!
//! Escape hatch: `// lint:allow(<rule>): <reason>` on the offending line or
//! the line above suppresses one rule there; the reason is mandatory and an
//! allow that suppresses nothing is itself an error — annotations cannot
//! rot silently.
//!
//! Run it: `cargo run -p graphalytics-lint -- check [--json]`.

pub mod check;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use check::{check_source, Finding};

use std::io;
use std::path::Path;

/// Checks every governed `.rs` file under `root` (the workspace root) and
/// returns all findings, sorted by path then line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in walk::rust_files(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(check_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// Locates the workspace root by walking up from `start` until a directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Renders findings as a JSON array (one object per finding) — the
/// `--json` output, consumed by CI annotations.
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_escapes() {
        let findings = vec![Finding {
            rule: "panic-safety",
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            message: "a \"quoted\" message".to_string(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn workspace_root_discovery_from_here() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint/Cargo.toml").exists());
    }
}
