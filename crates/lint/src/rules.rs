//! The rule catalog: stable IDs, scopes, and rationale one-liners.
//!
//! Scoping model: every rule runs only over **non-test code** — files under
//! a `tests/`, `benches/`, or `examples/` directory are skipped entirely,
//! and within a source file everything from the first `#[cfg(test)]` to the
//! end of the file is ignored (the workspace convention keeps the test
//! module last). Rules additionally restrict themselves to the crates where
//! the invariant is load-bearing (see [`Rule::crates`]).

/// Crates whose outputs must be bit-reproducible: the data generator, the
/// reference algorithms, the graph substrate they share, the parallel
/// runtime the kernels run on, the fault-injection plan (same seed
/// must fault the same sites on every run), the observability layer
/// (profiles and choke-point reports are derived from span *structure*;
/// the few clock reads the sampler/calibrator need carry explicit
/// `lint:allow(determinism-time)` pragmas), the serving plane (job
/// timestamps flow from the shared `Tracer` epoch clock so event streams
/// and artifacts stay replayable), and the distributed runtime (the
/// master/worker protocol must replay byte-identically; its socket
/// timeouts carry explicit pragmas).
pub const DETERMINISM_CRATES: &[&str] = &[
    "datagen", "algos", "graph", "parallel", "faults", "obs", "serve", "distrib",
];

/// The five platform crates, where an `unwrap()` on a failure path turns a
/// benchmark failure cell (Figure 4's "missing values") into a crash.
pub const PLATFORM_CRATES: &[&str] = &["pregel", "dataflow", "mapreduce", "graphdb", "columnar"];

/// Crates whose `unsafe` blocks must carry *pinned* proofs
/// (`SAFETY[<token-hash>]:`): the ones doing raw-pointer scatter under
/// parallelism, where a stale justification is worse than none.
pub const UNSAFE_CONTRACT_CRATES: &[&str] = &["parallel", "columnar", "graph"];

/// Crates where a silently-discarded `Result` erases a fault-taxonomy
/// signal: the five platforms (retry/recovery paths), the serving plane
/// (client-visible failures), and the fault injector itself.
pub const SWALLOWED_RESULT_CRATES: &[&str] = &[
    "pregel",
    "dataflow",
    "mapreduce",
    "graphdb",
    "columnar",
    "serve",
    "faults",
];

/// The two files that *implement* sanctioned thread creation — the
/// deterministic thread pool and the serve worker pool/acceptor — and are
/// therefore exempt from `spawn-audit` wholesale.
pub const SPAWN_AUDIT_EXEMPT_FILES: &[&str] =
    &["crates/parallel/src/lib.rs", "crates/serve/src/server.rs"];

/// One lint rule's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable rule ID, used in diagnostics and `lint:allow(<id>)` pragmas.
    pub id: &'static str,
    /// Crate-name scope; `None` means every workspace crate.
    pub crates: Option<&'static [&'static str]>,
    /// One-line rationale shown by `lint rules`.
    pub summary: &'static str,
}

/// Every rule the checker knows, in diagnostic order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "determinism-time",
        crates: Some(DETERMINISM_CRATES),
        summary: "no Instant/SystemTime/std::time in datagen, algos, graph, parallel, \
                  faults, obs, serve, or distrib: generated data, reference outputs, \
                  fault plans, profile analysis, job timelines, and the distributed \
                  wire protocol must not depend on wall clocks",
    },
    Rule {
        id: "determinism-entropy",
        crates: None,
        summary: "no thread_rng/from_entropy/OsRng/getrandom/RandomState anywhere: \
                  all randomness flows from the seeded SplitMix64/Xoshiro256 constructors",
    },
    Rule {
        id: "determinism-hash-iter",
        crates: Some(DETERMINISM_CRATES),
        summary: "iterating a HashMap/HashSet in determinism-critical crates must be \
                  order-insensitive or explicitly sorted before feeding ordered output",
    },
    Rule {
        id: "panic-safety",
        crates: Some(PLATFORM_CRATES),
        summary: "no unwrap()/expect()/panic! in platform crates: failure paths must \
                  propagate PlatformError so a failed run becomes a report cell, not a crash",
    },
    Rule {
        id: "unsafe-audit",
        crates: None,
        summary: "every `unsafe` must carry a `// SAFETY:` (or pinned `// SAFETY[hash]:`) \
                  comment on the same line or in the comment block directly above it",
    },
    Rule {
        id: "lock-order",
        crates: None,
        summary: "the workspace lock-acquisition graph (lock B taken while a guard for \
                  lock A is live) must be acyclic: a cycle is potential deadlock",
    },
    Rule {
        id: "guard-across-blocking",
        crates: None,
        summary: "no Mutex/RwLock guard may stay live across a blocking call (sleep, \
                  join, channel recv, socket/file I/O, or a Condvar wait on a different \
                  lock): every other consumer of the lock stalls behind it",
    },
    Rule {
        id: "unsafe-contract",
        crates: Some(UNSAFE_CONTRACT_CRATES),
        summary: "every `unsafe` in parallel/columnar/graph must carry a structured \
                  `// SAFETY[<hash>]: <invariant>` proof whose token hash matches the \
                  guarded code — editing the code without re-reviewing the proof is an error",
    },
    Rule {
        id: "swallowed-result",
        crates: Some(SWALLOWED_RESULT_CRATES),
        summary: "`let _ = <fallible call>` at fault-taxonomy sites discards a Result \
                  the taxonomy needs: handle it, surface it, or allow with a reason",
    },
    Rule {
        id: "spawn-audit",
        crates: Some(DETERMINISM_CRATES),
        summary: "threads in determinism-scoped crates must come from the parallel \
                  runtime or the serve worker pool, not ad-hoc `spawn` calls",
    },
    Rule {
        id: "metric-grammar",
        crates: None,
        summary: "metric names must match graphalytics_[a-z][a-z0-9_]* and span names \
                  must be dotted lowercase segments ([a-z][a-z0-9_]* separated by '.')",
    },
    Rule {
        id: "allow-pragma",
        crates: None,
        summary: "`// lint:allow(<rule>): <reason>` pragmas must name a known rule, \
                  give a non-empty reason, and actually suppress something",
    },
];

/// Looks up a rule by ID.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// True when `name` is a valid canonical metric name:
/// `graphalytics_` + lowercase snake, per the Prometheus naming grammar.
pub fn valid_metric_name(name: &str) -> bool {
    let Some(rest) = name.strip_prefix("graphalytics_") else {
        return false;
    };
    let mut chars = rest.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    rest.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// True when `name` is a valid span name: one or more dot-separated
/// lowercase snake segments ("pregel.superstep", "run").
pub fn valid_span_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            let mut chars = seg.chars();
            matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_resolvable() {
        for (i, r) in RULES.iter().enumerate() {
            assert_eq!(rule(r.id), Some(r));
            for other in &RULES[i + 1..] {
                assert_ne!(r.id, other.id);
            }
        }
    }

    #[test]
    fn metric_grammar() {
        assert!(valid_metric_name("graphalytics_runs_total"));
        assert!(valid_metric_name("graphalytics_load_seconds"));
        assert!(valid_metric_name("graphalytics_peak_rss_bytes"));
        assert!(!valid_metric_name("gx_runs_total")); // Missing prefix.
        assert!(!valid_metric_name("graphalytics_")); // Empty stem.
        assert!(!valid_metric_name("graphalytics_RunsTotal")); // Case.
        assert!(!valid_metric_name("graphalytics_runs-total")); // Dash.
    }

    #[test]
    fn span_grammar() {
        assert!(valid_span_name("run"));
        assert!(valid_span_name("pregel.superstep"));
        assert!(valid_span_name("virtuoso.round"));
        assert!(valid_span_name("a.b_c.d2"));
        assert!(!valid_span_name(""));
        assert!(!valid_span_name("Run.load")); // Case.
        assert!(!valid_span_name("run..load")); // Empty segment.
        assert!(!valid_span_name("run.2fast")); // Digit-initial segment.
    }
}
