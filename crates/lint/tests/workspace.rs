//! The lint self-check: the workspace this crate lives in must be clean.
//!
//! This is the same invariant CI enforces via `cargo run -p
//! graphalytics-lint -- check`, expressed as a test so `cargo test -q`
//! alone catches regressions.

use graphalytics_lint::{check_workspace, find_workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let start = env!("CARGO_MANIFEST_DIR");
    let root =
        find_workspace_root(std::path::Path::new(start)).expect("workspace root above crates/lint");
    let findings = check_workspace(&root).expect("workspace walk succeeds");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        findings.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
