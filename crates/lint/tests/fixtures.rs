//! End-to-end lint tests over the fixture files in `tests/fixtures/`.
//!
//! Each fixture carries known violations; the tests pin the exact rule IDs
//! and line numbers so any drift in the lexer or the rule heuristics is
//! caught immediately. Fixture sources are fed through [`check_source`]
//! under a synthetic workspace-relative path, which is what selects the
//! crate scope each rule applies to.

use graphalytics_lint::check_source;

fn findings(rel_path: &str, src: &str) -> Vec<(&'static str, u32)> {
    check_source(rel_path, src)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn determinism_time_fixture() {
    let src = include_str!("fixtures/determinism_time.rs");
    assert_eq!(
        findings("crates/datagen/src/fixture.rs", src),
        vec![("determinism-time", 2), ("determinism-time", 5)]
    );
    // The same source is fine outside the determinism-scoped crates: the
    // platform crates may time whatever they like.
    assert_eq!(findings("crates/core/src/fixture.rs", src), vec![]);
}

#[test]
fn determinism_entropy_fixture() {
    let src = include_str!("fixtures/determinism_entropy.rs");
    // Entropy sources are banned in every crate, not just the determinism-
    // scoped ones.
    assert_eq!(
        findings("crates/core/src/fixture.rs", src),
        vec![("determinism-entropy", 4), ("determinism-entropy", 11)]
    );
}

#[test]
fn determinism_hash_iter_fixture() {
    let src = include_str!("fixtures/determinism_hash_iter.rs");
    assert_eq!(
        findings("crates/algos/src/fixture.rs", src),
        vec![("determinism-hash-iter", 6)]
    );
}

#[test]
fn panic_safety_fixture() {
    let src = include_str!("fixtures/panic_safety.rs");
    assert_eq!(
        findings("crates/pregel/src/fixture.rs", src),
        vec![
            ("panic-safety", 4),
            ("panic-safety", 8),
            ("panic-safety", 14),
        ]
    );
    // Non-platform crates are outside the rule's scope.
    assert_eq!(findings("crates/core/src/fixture.rs", src), vec![]);
}

#[test]
fn unsafe_audit_fixture() {
    let src = include_str!("fixtures/unsafe_audit.rs");
    // Outside the unsafe-contract crates only the bare audit applies.
    assert_eq!(
        findings("crates/serve/src/fixture.rs", src),
        vec![("unsafe-audit", 6)]
    );
    // In a contract crate the same block additionally needs a pinned proof.
    assert_eq!(
        findings("crates/columnar/src/fixture.rs", src),
        vec![("unsafe-audit", 6), ("unsafe-contract", 6)]
    );
}

#[test]
fn metric_grammar_fixture() {
    let src = include_str!("fixtures/metric_grammar.rs");
    assert_eq!(
        findings("crates/core/src/fixture.rs", src),
        vec![
            ("metric-grammar", 4),
            ("metric-grammar", 5),
            ("metric-grammar", 6),
        ]
    );
}

#[test]
fn allow_roundtrip_fixture() {
    let src = include_str!("fixtures/allow_roundtrip.rs");
    // The pragma on line 5 suppresses the Instant::now() on line 6; the
    // un-annotated `use std::time::Instant` on line 2 still fires, and the
    // allow on line 12 covers nothing, which is itself a violation.
    assert_eq!(
        findings("crates/datagen/src/fixture.rs", src),
        vec![("determinism-time", 2), ("allow-pragma", 12)]
    );
}

#[test]
fn lock_order_fixture() {
    let src = include_str!("fixtures/lock_order.rs");
    // `forward` (alpha → beta) and `backward` (beta → alpha) close a
    // cycle: the diagnostic lands on each inner acquisition. The
    // consistent alpha → gamma nesting contributes no finding.
    assert_eq!(
        findings("crates/serve/src/fixture.rs", src),
        vec![("lock-order", 13), ("lock-order", 20)]
    );
}

#[test]
fn guard_across_blocking_fixture() {
    let src = include_str!("fixtures/guard_across_blocking.rs");
    // `bad_sleep` holds the guard across a sleep, `bad_foreign_recv`
    // across a channel recv. The scoped guard, the Condvar wait on its
    // own guard, and the allowed sleep are all clean.
    assert_eq!(
        findings("crates/core/src/fixture.rs", src),
        vec![("guard-across-blocking", 12), ("guard-across-blocking", 32),]
    );
}

#[test]
fn unsafe_contract_fixture() {
    let src = include_str!("fixtures/unsafe_contract.rs");
    // Missing proof (also an audit failure), unpinned proof, stale pin;
    // the correctly pinned block on line 20 is clean.
    assert_eq!(
        findings("crates/parallel/src/fixture.rs", src),
        vec![
            ("unsafe-audit", 5),
            ("unsafe-contract", 5),
            ("unsafe-contract", 9),
            ("unsafe-contract", 14),
        ]
    );
    // Outside parallel/columnar/graph the pinned-contract rule is off —
    // only the bare audit applies.
    assert_eq!(
        findings("crates/serve/src/fixture.rs", src),
        vec![("unsafe-audit", 5)]
    );
}

#[test]
fn swallowed_result_fixture() {
    let src = include_str!("fixtures/swallowed_result.rs");
    assert_eq!(
        findings("crates/mapreduce/src/fixture.rs", src),
        vec![("swallowed-result", 4)]
    );
    // algos is outside the fault-taxonomy scope: the discard is fine
    // there, which in turn leaves the fixture's allow pragma unused —
    // and unused allows are themselves findings, in any crate.
    assert_eq!(
        findings("crates/algos/src/fixture.rs", src),
        vec![("allow-pragma", 16)]
    );
}

#[test]
fn spawn_audit_fixture() {
    let src = include_str!("fixtures/spawn_audit.rs");
    assert_eq!(
        findings("crates/datagen/src/fixture.rs", src),
        vec![("spawn-audit", 4)]
    );
    // The pool implementation files are exempt wholesale — which leaves
    // the fixture's allow pragma unused, and that is still reported.
    assert_eq!(
        findings("crates/parallel/src/lib.rs", src),
        vec![("allow-pragma", 12)]
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/clean.rs");
    for path in [
        "crates/datagen/src/fixture.rs",
        "crates/pregel/src/fixture.rs",
        "crates/core/src/fixture.rs",
    ] {
        assert_eq!(findings(path, src), vec![], "unexpected findings in {path}");
    }
}

#[test]
fn diagnostics_render_path_line_and_rule() {
    let src = include_str!("fixtures/unsafe_audit.rs");
    let all = check_source("crates/columnar/src/fixture.rs", src);
    let rendered = all[0].render();
    assert!(
        rendered.starts_with("crates/columnar/src/fixture.rs:6: [unsafe-audit]"),
        "unexpected rendering: {rendered}"
    );
}
