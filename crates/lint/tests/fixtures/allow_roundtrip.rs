//! Fixture: lint:allow pragmas — suppressed violation, plus an unused allow.
use std::time::Instant;

pub fn timed_len(edges: &[(u32, u32)]) -> (usize, f64) {
    // lint:allow(determinism-time): timing feeds stats output, not graph content
    let t0 = Instant::now();
    let n = edges.len();
    (n, t0.elapsed().as_secs_f64())
}

pub fn plain_len(edges: &[(u32, u32)]) -> usize {
    // lint:allow(panic-safety): nothing here can panic
    edges.len()
}
