//! Fixture: unsafe-contract — pinned SAFETY proofs in the unsafe-heavy
//! crates. Four shapes: no proof, unpinned, stale pin, valid pin.

pub fn no_proof(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(0) }
}

pub fn unpinned(xs: &[u8]) -> u8 {
    // SAFETY: caller guarantees xs.len() > 1.
    unsafe { *xs.get_unchecked(1) }
}

pub fn stale(xs: &[u8]) -> u8 {
    // SAFETY[00000000]: caller guarantees xs.len() > 2.
    unsafe { *xs.get_unchecked(2) }
}

pub fn pinned(xs: &[u8]) -> u8 {
    // SAFETY[5047aee1]: caller guarantees xs.len() > 3.
    unsafe { *xs.get_unchecked(3) }
}
