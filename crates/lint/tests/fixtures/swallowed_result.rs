//! Fixture: swallowed-result — `let _ =` on fault-taxonomy calls.

pub fn cleanup(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
}

pub fn checked(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::remove_dir_all(dir)
}

pub fn harmless(x: u32) {
    let _ = x + 1;
}

pub fn allowed(dir: &std::path::Path) {
    // lint:allow(swallowed-result): best-effort temp cleanup on the success path
    let _ = std::fs::remove_dir_all(dir);
}
