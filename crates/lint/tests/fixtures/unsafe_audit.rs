//! Fixture: unsafe without a SAFETY justification.

pub fn sum(xs: &[u64]) -> u64 {
    let mut total = 0;
    for i in 0..xs.len() {
        total += unsafe { *xs.get_unchecked(i) };
    }
    total
}
