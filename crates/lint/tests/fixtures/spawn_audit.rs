//! Fixture: spawn-audit — ad-hoc threads in determinism-scoped crates.

pub fn rogue() {
    std::thread::spawn(|| {});
}

pub fn spawn(work: impl FnOnce()) {
    work();
}

pub fn allowed() {
    // lint:allow(spawn-audit): watchdog thread only logs, never touches outputs
    std::thread::spawn(|| {});
}
