//! Fixture: panics in platform code.

pub fn first_vertex(partition: &[u32]) -> u32 {
    *partition.first().unwrap()
}

pub fn budget(limit: Option<usize>) -> usize {
    limit.expect("budget must be configured")
}

pub fn dispatch(kind: &str) {
    match kind {
        "bsp" => {}
        other => panic!("unknown engine {other}"),
    }
}
