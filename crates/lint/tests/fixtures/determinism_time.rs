//! Fixture: wall-clock reads inside a determinism-scoped crate.
use std::time::Instant;

pub fn degree_histogram(edges: &[(u32, u32)]) -> Vec<u32> {
    let t0 = Instant::now();
    let mut hist = vec![0u32; 64];
    for &(src, _) in edges {
        hist[(src % 64) as usize] += 1;
    }
    let _elapsed = t0.elapsed();
    hist
}
