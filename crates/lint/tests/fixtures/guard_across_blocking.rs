//! Fixture: guard-across-blocking — a mutex guard live across a sleep or
//! a channel recv stalls every other consumer of the lock.

pub struct Store {
    state: std::sync::Mutex<u32>,
    wakeup: std::sync::Condvar,
}

impl Store {
    pub fn bad_sleep(&self) {
        let g = self.state.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
    }

    pub fn good_scoped(&self) {
        {
            let g = self.state.lock();
            drop(g);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    pub fn good_condvar(&self) {
        let mut inner = self.state.lock();
        inner = self.wakeup.wait(inner);
        drop(inner);
    }

    pub fn bad_foreign_recv(&self, rx: &std::sync::mpsc::Receiver<u32>) {
        let g = self.state.lock();
        let msg = rx.recv();
        drop(g);
        drop(msg);
    }

    pub fn allowed(&self) {
        let g = self.state.lock();
        // lint:allow(guard-across-blocking): startup path — no other thread exists yet
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(g);
    }
}
