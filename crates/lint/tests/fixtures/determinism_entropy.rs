//! Fixture: entropy-seeded randomness.

pub fn shuffled_ids(n: u32) -> Vec<u32> {
    let mut rng = rand::thread_rng();
    let mut ids: Vec<u32> = (0..n).collect();
    ids.swap(0, (rng.next_u32() % n) as usize);
    ids
}

pub fn fresh_rng() -> Xoshiro256 {
    Xoshiro256::from_entropy()
}
