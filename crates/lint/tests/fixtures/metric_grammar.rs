//! Fixture: metric and span names that violate the naming grammar.

pub fn record(metrics: &Metrics, tracer: &Tracer) {
    metrics.inc_counter("runs_total", 1);
    metrics.set_gauge("graphalytics_PeakRss", 42);
    let _span = tracer.span("Load.Graph");
}
