//! Fixture: unordered hash iteration feeding output.
use rustc_hash::FxHashMap;

pub fn label_counts(labels: &FxHashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (&label, &count) in labels.iter() {
        out.push((label, count));
    }
    out
}
