//! Fixture: lock-order — `forward` and `backward` acquire the same pair
//! of locks in opposite orders, closing a cycle in the acquisition graph.

pub struct Registry {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
    gamma: std::sync::Mutex<u32>,
}

impl Registry {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }

    pub fn consistent(&self) {
        let a = self.alpha.lock();
        let g = self.gamma.lock();
        drop(g);
        drop(a);
    }
}
