//! Fixture: code that satisfies every rule.

pub fn degree_histogram(edges: &[(u32, u32)]) -> Vec<u32> {
    let mut hist = vec![0u32; 64];
    for &(src, _) in edges {
        hist[(src % 64) as usize] += 1;
    }
    hist
}

pub fn first_vertex(partition: &[u32]) -> Option<u32> {
    partition.first().copied()
}

#[cfg(test)]
mod tests {
    // Test code may panic freely: unwrap/expect are idiomatic assertions.
    #[test]
    fn histogram_counts() {
        let h = super::degree_histogram(&[(0, 1), (64, 2)]);
        assert_eq!(*h.first().unwrap(), 2);
    }
}
