//! Direct tests of the MapReduce algorithm job chains (below the Platform
//! adapter): each kernel's propagate/update jobs against the reference
//! implementations, convergence behavior, and on-disk state layout.

use graphalytics_core::platform::RunContext;
use graphalytics_graph::{CsrGraph, EdgeListGraph, Vid};
use graphalytics_mapreduce::algorithms;
use graphalytics_mapreduce::job::{write_records, JobConfig, Record};
use std::path::PathBuf;

struct Fixture {
    config: JobConfig,
    edge_files: Vec<PathBuf>,
    graph: CsrGraph,
    #[allow(dead_code)]
    dir: PathBuf,
}

fn fixture(name: &str, edges: Vec<(u64, u64)>) -> Fixture {
    let dir = std::env::temp_dir().join(format!("gx-chains-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let graph = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(edges));
    // Two splits, arcs tagged "E <dst>" keyed by source, like the platform's ETL.
    let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); 2];
    for v in 0..graph.num_vertices() as Vid {
        for &u in graph.neighbors(v) {
            buckets[v as usize % 2].push((v.to_string(), format!("E {u}")));
        }
    }
    let mut edge_files = Vec::new();
    for (i, bucket) in buckets.iter().enumerate() {
        let path = dir.join(format!("edges-{i}"));
        write_records(&path, bucket).unwrap();
        edge_files.push(path);
    }
    Fixture {
        config: JobConfig::new(&dir),
        edge_files,
        graph,
        dir,
    }
}

fn sample_edges() -> Vec<(u64, u64)> {
    // Triangle + tail + second component + a longer path.
    let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)];
    edges.extend((6..14).map(|i| (i, i + 1)));
    edges
}

#[test]
fn conn_chain_matches_reference() {
    let f = fixture("conn", sample_edges());
    let labels = algorithms::connected_components(
        &f.config,
        &f.edge_files,
        f.graph.num_vertices(),
        &RunContext::unbounded(),
    )
    .unwrap();
    assert_eq!(
        labels,
        graphalytics_algos::conn::connected_components(&f.graph)
    );
}

#[test]
fn bfs_chain_matches_reference_and_needs_diameter_rounds() {
    let f = fixture("bfs", sample_edges());
    let depths = algorithms::bfs(
        &f.config,
        &f.edge_files,
        f.graph.num_vertices(),
        Some(6),
        &RunContext::unbounded(),
    )
    .unwrap();
    assert_eq!(depths, graphalytics_algos::bfs::bfs(&f.graph, 6));
    // The long path forces many iterations; state files for each round
    // must exist on disk (iterative chains keep state in files).
    let rounds = std::fs::read_dir(&f.dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("bfs-depths-"))
        .count();
    assert!(
        rounds >= 8,
        "expected many BFS rounds on disk, saw {rounds}"
    );
}

#[test]
fn bfs_chain_without_source() {
    let f = fixture("bfs-nosrc", vec![(0, 1), (1, 2)]);
    let depths =
        algorithms::bfs(&f.config, &f.edge_files, 3, None, &RunContext::unbounded()).unwrap();
    assert_eq!(depths, vec![-1, -1, -1]);
}

#[test]
fn cd_chain_matches_reference() {
    let f = fixture("cd", sample_edges());
    let labels = algorithms::community_detection(
        &f.config,
        &f.edge_files,
        f.graph.num_vertices(),
        10,
        0.05,
        0.1,
        &RunContext::unbounded(),
    )
    .unwrap();
    assert_eq!(
        labels,
        graphalytics_algos::cd::community_detection(&f.graph, 10, 0.05, 0.1)
    );
}

#[test]
fn stats_chain_matches_reference() {
    let f = fixture("stats", sample_edges());
    let mean = algorithms::mean_local_cc(
        &f.config,
        &f.edge_files,
        f.graph.num_vertices(),
        &RunContext::unbounded(),
    )
    .unwrap();
    let expected = graphalytics_algos::stats::stats(&f.graph).mean_local_cc;
    assert!((mean - expected).abs() < 1e-12, "{mean} vs {expected}");
}

#[test]
fn pagerank_chain_matches_reference_within_counter_precision() {
    let f = fixture("pr", sample_edges());
    let ranks = algorithms::pagerank(
        &f.config,
        &f.edge_files,
        f.graph.num_vertices(),
        15,
        0.85,
        &RunContext::unbounded(),
    )
    .unwrap();
    let expected = graphalytics_algos::pagerank::pagerank(&f.graph, 15, 0.85);
    for (a, b) in ranks.iter().zip(&expected) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
    let sum: f64 = ranks.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn evo_chain_matches_reference() {
    let f = fixture("evo", sample_edges());
    let external: Vec<u64> = (0..f.graph.num_vertices() as Vid)
        .map(|v| f.graph.external_id(v))
        .collect();
    let edges = algorithms::forest_fire(
        &f.config,
        &f.edge_files,
        &external,
        20,
        0.4,
        16,
        777,
        &RunContext::unbounded(),
    )
    .unwrap();
    let expected = graphalytics_algos::evo::forest_fire(&f.graph, 20, 0.4, 16, 777);
    assert_eq!(edges, expected);
}

#[test]
fn chains_honor_deadlines_between_jobs() {
    let f = fixture("deadline", (0..200).map(|i| (i, i + 1)).collect());
    let ctx = RunContext::with_timeout(std::time::Duration::from_millis(1));
    std::thread::sleep(std::time::Duration::from_millis(2));
    let err = algorithms::connected_components(&f.config, &f.edge_files, 201, &ctx).unwrap_err();
    assert_eq!(err, graphalytics_core::platform::PlatformError::Timeout);
}

#[test]
fn isolated_vertices_survive_the_chains() {
    // Vertex 3 has no edges: it must appear in outputs with its own label.
    let f = fixture("isolated", vec![(0, 1)]);
    let labels =
        algorithms::connected_components(&f.config, &f.edge_files, 4, &RunContext::unbounded())
            .unwrap();
    assert_eq!(labels[2], 2);
    assert_eq!(labels[3], 3);
    let depths = algorithms::bfs(
        &f.config,
        &f.edge_files,
        4,
        Some(0),
        &RunContext::unbounded(),
    )
    .unwrap();
    assert_eq!(depths, vec![0, 1, -1, -1]);
}
