//! The Hadoop MapReduce platform adapter.

use std::path::PathBuf;

use graphalytics_algos::{Algorithm, Output};
use graphalytics_core::platform::{GraphHandle, Platform, PlatformError, RunContext};
use graphalytics_graph::{CsrGraph, Vid};
use rustc_hash::FxHashMap;

use crate::algorithms;
use crate::job::{write_records, JobConfig, Record};

/// MapReduce platform configuration.
#[derive(Debug, Clone)]
pub struct MapReduceConfig {
    /// Concurrent map tasks per job.
    pub map_tasks: usize,
    /// Reduce partitions per job.
    pub reduce_tasks: usize,
    /// Edge input splits written at ETL time (HDFS block count).
    pub input_splits: usize,
    /// Root scratch directory ("HDFS"); default under the system temp dir.
    pub work_root: PathBuf,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        Self {
            map_tasks: 4,
            reduce_tasks: 4,
            input_splits: 4,
            work_root: std::env::temp_dir().join(format!("gx-hadoop-{}", std::process::id())),
        }
    }
}

struct LoadedGraph {
    edge_files: Vec<PathBuf>,
    /// `W <neighbor> <weight>` records, one file per split — the SSSP
    /// inputs (fixed-point weights survive the text round-trip exactly).
    weighted_edge_files: Vec<PathBuf>,
    num_vertices: usize,
    external_ids: Vec<u64>,
    work_dir: PathBuf,
}

/// Hadoop MapReduce stand-in: every kernel is an iterative chain of
/// disk-backed map/sort/shuffle/reduce jobs. Slow, but it never runs out
/// of memory — the paper's "does not crash even when processing the
/// largest workload".
pub struct MapReducePlatform {
    config: MapReduceConfig,
    graphs: FxHashMap<u64, LoadedGraph>,
    next_handle: u64,
}

impl MapReducePlatform {
    /// Creates the platform.
    pub fn new(config: MapReduceConfig) -> Self {
        Self {
            config,
            graphs: FxHashMap::default(),
            next_handle: 0,
        }
    }

    /// Default configuration.
    pub fn with_defaults() -> Self {
        Self::new(MapReduceConfig::default())
    }

    fn loaded(&self, handle: GraphHandle) -> Result<&LoadedGraph, PlatformError> {
        self.graphs
            .get(&handle.0)
            .ok_or(PlatformError::InvalidHandle)
    }

    /// A fresh job scratch dir per run (jobs of different algorithms must
    /// not collide).
    fn job_config(&self, loaded: &LoadedGraph, tag: &str) -> Result<JobConfig, PlatformError> {
        let work_dir = loaded.work_dir.join(format!("run-{tag}-{}", next_run_id()));
        std::fs::create_dir_all(&work_dir)
            .map_err(|e| PlatformError::TransientIo(format!("i/o: {e}")))?;
        Ok(JobConfig {
            map_tasks: self.config.map_tasks,
            reduce_tasks: self.config.reduce_tasks,
            work_dir,
        })
    }
}

fn next_run_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Platform for MapReducePlatform {
    fn name(&self) -> &'static str {
        "MapReduce"
    }

    fn load_graph(&mut self, graph: &CsrGraph) -> Result<GraphHandle, PlatformError> {
        // ETL: write the arc records as `input_splits` HDFS-style files.
        let handle = GraphHandle(self.next_handle);
        self.next_handle += 1;
        let work_dir = self.config.work_root.join(format!("graph-{}", handle.0));
        std::fs::create_dir_all(&work_dir)
            .map_err(|e| PlatformError::TransientIo(format!("i/o: {e}")))?;
        let splits = self.config.input_splits.max(1);
        let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); splits];
        let mut weighted_buckets: Vec<Vec<Record>> = vec![Vec::new(); splits];
        for v in 0..graph.num_vertices() as Vid {
            let bucket = v as usize % splits;
            for (&u, &w) in graph.neighbors(v).iter().zip(graph.neighbor_weights(v)) {
                buckets[bucket].push((v.to_string(), format!("E {u}")));
                weighted_buckets[bucket].push((v.to_string(), format!("W {u} {w}")));
            }
        }
        let mut edge_files = Vec::new();
        for (i, bucket) in buckets.iter().enumerate() {
            let path = work_dir.join(format!("edges-{i:05}"));
            write_records(&path, bucket)?;
            edge_files.push(path);
        }
        let mut weighted_edge_files = Vec::new();
        for (i, bucket) in weighted_buckets.iter().enumerate() {
            let path = work_dir.join(format!("wedges-{i:05}"));
            write_records(&path, bucket)?;
            weighted_edge_files.push(path);
        }
        let external_ids = (0..graph.num_vertices() as Vid)
            .map(|v| graph.external_id(v))
            .collect();
        self.graphs.insert(
            handle.0,
            LoadedGraph {
                edge_files,
                weighted_edge_files,
                num_vertices: graph.num_vertices(),
                external_ids,
                work_dir,
            },
        );
        Ok(handle)
    }

    fn run(
        &mut self,
        handle: GraphHandle,
        algorithm: &Algorithm,
        ctx: &RunContext,
    ) -> Result<Output, PlatformError> {
        let loaded = self.loaded(handle)?;
        let n = loaded.num_vertices;
        match algorithm {
            Algorithm::Stats => {
                let config = self.job_config(loaded, "stats")?;
                let mean = algorithms::mean_local_cc(&config, &loaded.edge_files, n, ctx)?;
                // |V| and |E| come from the input manifests; only the
                // clustering coefficient needs jobs.
                let num_edges = loaded
                    .edge_files
                    .iter()
                    .map(|f| crate::job::read_records(f).map(|r| r.len()).unwrap_or(0))
                    .sum::<usize>()
                    / 2;
                Ok(Output::Stats(graphalytics_algos::StatsResult {
                    num_vertices: n,
                    num_edges,
                    mean_local_cc: mean,
                }))
            }
            Algorithm::Bfs { source } => {
                let config = self.job_config(loaded, "bfs")?;
                // Map the external source id to an internal one.
                let source = loaded
                    .external_ids
                    .iter()
                    .position(|&e| e == *source)
                    .map(|i| i as u32);
                Ok(Output::Depths(algorithms::bfs(
                    &config,
                    &loaded.edge_files,
                    n,
                    source,
                    ctx,
                )?))
            }
            Algorithm::Conn => {
                let config = self.job_config(loaded, "conn")?;
                Ok(Output::Components(algorithms::connected_components(
                    &config,
                    &loaded.edge_files,
                    n,
                    ctx,
                )?))
            }
            Algorithm::Cd {
                iterations,
                hop_attenuation,
                degree_exponent,
            } => {
                let config = self.job_config(loaded, "cd")?;
                Ok(Output::Communities(algorithms::community_detection(
                    &config,
                    &loaded.edge_files,
                    n,
                    *iterations,
                    *hop_attenuation,
                    *degree_exponent,
                    ctx,
                )?))
            }
            Algorithm::Evo {
                new_vertices,
                p_forward,
                max_burst,
                seed,
            } => {
                let config = self.job_config(loaded, "evo")?;
                Ok(Output::Evolution(algorithms::forest_fire(
                    &config,
                    &loaded.edge_files,
                    &loaded.external_ids,
                    *new_vertices,
                    *p_forward,
                    *max_burst,
                    *seed,
                    ctx,
                )?))
            }
            Algorithm::Sssp { source } => {
                let config = self.job_config(loaded, "sssp")?;
                let source = loaded
                    .external_ids
                    .iter()
                    .position(|&e| e == *source)
                    .map(|i| i as u32);
                Ok(Output::Distances(algorithms::sssp(
                    &config,
                    &loaded.weighted_edge_files,
                    n,
                    source,
                    ctx,
                )?))
            }
            Algorithm::Lcc => {
                let config = self.job_config(loaded, "lcc")?;
                Ok(Output::LocalClustering(algorithms::local_clustering(
                    &config,
                    &loaded.edge_files,
                    n,
                    ctx,
                )?))
            }
            Algorithm::PageRank {
                iterations,
                damping,
            } => {
                let config = self.job_config(loaded, "pr")?;
                Ok(Output::Ranks(algorithms::pagerank(
                    &config,
                    &loaded.edge_files,
                    n,
                    *iterations,
                    *damping,
                    ctx,
                )?))
            }
        }
    }

    fn unload(&mut self, handle: GraphHandle) {
        if let Some(loaded) = self.graphs.remove(&handle.0) {
            // lint:allow(swallowed-result): unload is infallible by contract; a lingering work dir costs disk, not correctness
            let _ = std::fs::remove_dir_all(&loaded.work_dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_algos::reference;
    use graphalytics_graph::EdgeListGraph;
    use std::sync::Arc;
    use std::time::Duration;

    fn test_graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::from_edge_list(
            &EdgeListGraph::undirected_from_edges(vec![(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]),
        ))
    }

    #[test]
    fn all_workload_algorithms_validate() {
        let mut p = MapReducePlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        for alg in Algorithm::paper_workload() {
            let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
            let expected = reference(&g, &alg);
            assert!(expected.equivalent(&out), "{alg:?}: got {out:?}");
        }
        p.unload(handle);
    }

    #[test]
    fn ldbc_workload_algorithms_validate() {
        let mut p = MapReducePlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        for alg in Algorithm::ldbc_workload() {
            let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
            let expected = reference(&g, &alg);
            assert!(expected.equivalent(&out), "{alg:?}: got {out:?}");
        }
        p.unload(handle);
    }

    #[test]
    fn sssp_validates_on_weighted_graph() {
        let mut p = MapReducePlatform::with_defaults();
        let g = Arc::new(CsrGraph::from_edge_list(&EdgeListGraph::new_weighted(
            Vec::new(),
            vec![
                (0, 1, 2_000_000),
                (1, 2, 500_000),
                (0, 2, 4_000_000),
                (2, 3, 1_500_000),
                (4, 5, 1_000_000),
            ],
            false,
        )));
        let handle = p.load_graph(&g).unwrap();
        let alg = Algorithm::Sssp { source: 0 };
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&g, &alg).equivalent(&out), "{out:?}");
        p.unload(handle);
    }

    #[test]
    fn pagerank_validates() {
        let mut p = MapReducePlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let alg = Algorithm::default_pagerank();
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&g, &alg).equivalent(&out));
    }

    #[test]
    fn timeout_produces_dnf() {
        let mut p = MapReducePlatform::with_defaults();
        let g = Arc::new(CsrGraph::from_edge_list(
            &EdgeListGraph::undirected_from_edges((0..500).map(|i| (i, i + 1)).collect()),
        ));
        let handle = p.load_graph(&g).unwrap();
        // A long path needs many label-propagation iterations; a tiny
        // deadline must trip between jobs.
        let ctx = RunContext::with_timeout(Duration::from_millis(1));
        let err = p.run(handle, &Algorithm::Conn, &ctx).unwrap_err();
        assert_eq!(err, PlatformError::Timeout);
    }

    #[test]
    fn unload_removes_scratch_space() {
        let mut p = MapReducePlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let dir = p.loaded(handle).unwrap().work_dir.clone();
        assert!(dir.exists());
        p.unload(handle);
        assert!(!dir.exists());
        assert_eq!(
            p.run(handle, &Algorithm::Conn, &RunContext::unbounded()),
            Err(PlatformError::InvalidHandle)
        );
    }

    #[test]
    fn bfs_with_missing_source() {
        let mut p = MapReducePlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let out = p
            .run(
                handle,
                &Algorithm::Bfs { source: 999 },
                &RunContext::unbounded(),
            )
            .unwrap();
        assert_eq!(out, Output::Depths(vec![-1; 6]));
    }
}
