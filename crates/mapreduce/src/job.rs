//! A disk-backed MapReduce runtime — the Hadoop MapReduce v2 stand-in.
//!
//! "Hadoop MapReduce is an Apache open-source project implementing the
//! MapReduce programming model introduced by Google" (paper §3.2). The
//! defining performance property the paper relies on: "MapReduce does not
//! need to keep graph data in memory during processing and thus does not
//! crash even when processing the largest workload" — while being "two
//! orders of magnitude slower than Giraph and GraphX".
//!
//! This runtime reproduces that trade-off with real I/O, not simulation:
//! map tasks stream records from input files and spill sorted, hash-
//! partitioned intermediate files to disk; reduce tasks merge the spills
//! for their partition, group by key, and write output part files. Every
//! record crosses the disk between map and reduce, exactly like Hadoop's
//! shuffle, so jobs are slow but memory use stays bounded regardless of
//! graph size.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use graphalytics_core::faults::{fingerprint, FaultSite, RecoveryAction};
use graphalytics_core::platform::{PlatformError, RunContext};
use graphalytics_graph::partition::mix64;

/// A key-value record; keys and values are text (Hadoop's Text/Text).
pub type Record = (String, String);

/// Collects emitted records from mappers and reducers.
#[derive(Debug, Default)]
pub struct Emitter {
    records: Vec<Record>,
}

impl Emitter {
    /// Emits a record.
    pub fn emit(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.records.push((key.into(), value.into()));
    }
}

/// A map function over input records.
pub trait Mapper: Sync {
    /// Processes one input record.
    fn map(&self, key: &str, value: &str, out: &mut Emitter);
}

/// A reduce function over grouped records.
pub trait Reducer: Sync {
    /// Processes one key and all its values.
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter);
}

/// Job configuration: task parallelism and working directory.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Concurrent map tasks.
    pub map_tasks: usize,
    /// Reduce partitions (and concurrent reduce tasks).
    pub reduce_tasks: usize,
    /// Scratch directory for spills and outputs.
    pub work_dir: PathBuf,
}

impl JobConfig {
    /// A config rooted at `work_dir` with 4/4 tasks.
    pub fn new(work_dir: impl Into<PathBuf>) -> Self {
        Self {
            map_tasks: 4,
            reduce_tasks: 4,
            work_dir: work_dir.into(),
        }
    }
}

/// Counters reported by a job run (Hadoop-style).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobCounters {
    /// Records read by mappers.
    pub map_input: usize,
    /// Records emitted by mappers (= records spilled to disk).
    pub map_output: usize,
    /// Records emitted by reducers.
    pub reduce_output: usize,
    /// Bytes written to intermediate spill files.
    pub spill_bytes: usize,
    /// User counters, keyed by name (used for convergence detection in
    /// iterative drivers).
    pub user: std::collections::BTreeMap<String, i64>,
}

impl JobCounters {
    /// Reads a user counter (0 when absent).
    pub fn user_counter(&self, name: &str) -> i64 {
        self.user.get(name).copied().unwrap_or(0)
    }
}

/// A reducer wrapper that can bump user counters through a shared cell.
pub struct ReduceContext<'a> {
    /// Output collector.
    pub out: &'a mut Emitter,
    /// User counter deltas.
    pub counters: &'a mut std::collections::BTreeMap<String, i64>,
}

/// Like [`Reducer`] but with counter access; jobs that need convergence
/// detection implement this (the plain [`Reducer`] impls get it for free
/// via a blanket adapter in [`run_job`]).
pub trait CountingReducer: Sync {
    /// Processes one key group with counter access.
    fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>);
}

impl<R: Reducer> CountingReducer for R {
    fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>) {
        Reducer::reduce(self, key, values, ctx.out)
    }
}

/// Writes records to a file, one `key\tvalue` per line.
pub fn write_records(path: &Path, records: &[Record]) -> Result<(), PlatformError> {
    let file = File::create(path).map_err(io_err)?;
    let mut writer = BufWriter::new(file);
    for (k, v) in records {
        writeln!(writer, "{k}\t{v}").map_err(io_err)?;
    }
    writer.flush().map_err(io_err)
}

/// Reads records from a file written by [`write_records`].
pub fn read_records(path: &Path) -> Result<Vec<Record>, PlatformError> {
    let file = File::open(path).map_err(io_err)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(io_err)?;
        if line.is_empty() {
            continue;
        }
        match line.split_once('\t') {
            Some((k, v)) => out.push((k.to_string(), v.to_string())),
            None => out.push((line, String::new())),
        }
    }
    Ok(out)
}

/// Reads all part files of a job output directory, concatenated.
pub fn read_output(dir: &Path) -> Result<Vec<Record>, PlatformError> {
    let mut parts: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(io_err)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("part-"))
        })
        .collect();
    parts.sort();
    let mut out = Vec::new();
    for part in parts {
        out.extend(read_records(&part)?);
    }
    Ok(out)
}

fn io_err(e: std::io::Error) -> PlatformError {
    // Transient by classification: a failed read/write of a spill or part
    // file is cluster weather (full disk, flaky mount), the kind of error
    // Hadoop retries task attempts for.
    PlatformError::TransientIo(format!("i/o: {e}"))
}

/// Task attempts allowed per map/reduce task before the job fails —
/// Hadoop's `mapreduce.map.maxattempts` default.
const MAX_TASK_ATTEMPTS: u32 = 4;

/// Task-attempt injection point: probes the fault plan at task start and
/// retries the attempt (bounded) on an injected transient I/O error, the
/// Hadoop speculative-reexecution model in miniature.
fn probe_task_attempts(ctx: &RunContext, job: u64, task: u32) -> Result<(), PlatformError> {
    if ctx.faults().is_none() {
        return Ok(());
    }
    let mut attempt = 0u32;
    loop {
        let site = FaultSite::TaskIo { job, task, attempt };
        match ctx.inject(site.clone()) {
            Ok(()) => return Ok(()),
            Err(e) if attempt + 1 >= MAX_TASK_ATTEMPTS => return Err(e),
            Err(_) => {
                ctx.note_recovery(RecoveryAction::TaskRetry, Some(site), 0);
                attempt += 1;
            }
        }
    }
}

/// Runs one MapReduce job: `inputs` → mapper → sort/spill → shuffle →
/// reducer → `output_dir/part-NNNNN`. Returns counters.
pub fn run_job<M: Mapper, R: CountingReducer>(
    config: &JobConfig,
    job_name: &str,
    inputs: &[PathBuf],
    mapper: &M,
    reducer: &R,
    output_dir: &Path,
) -> Result<JobCounters, PlatformError> {
    run_job_traced(
        config,
        job_name,
        inputs,
        mapper,
        reducer,
        output_dir,
        &RunContext::unbounded(),
    )
}

/// [`run_job`] with observability and fault hooks from the harness's
/// [`RunContext`]: emits one `mapreduce.job` span carrying the job name
/// and final [`JobCounters`], with nested `mapreduce.map` /
/// `mapreduce.reduce` phase spans; when a fault plan is armed, every task
/// is a transient-I/O injection point with bounded attempt retries.
#[allow(clippy::too_many_arguments)]
pub fn run_job_traced<M: Mapper, R: CountingReducer>(
    config: &JobConfig,
    job_name: &str,
    inputs: &[PathBuf],
    mapper: &M,
    reducer: &R,
    output_dir: &Path,
    ctx: &RunContext,
) -> Result<JobCounters, PlatformError> {
    let tracer = ctx.tracer();
    let map_job_fp = fingerprint(&format!("{job_name}#map"));
    let reduce_job_fp = fingerprint(&format!("{job_name}#reduce"));
    let mut job_span = tracer.span("mapreduce.job");
    job_span.field("job", job_name);
    std::fs::create_dir_all(output_dir).map_err(io_err)?;
    let spill_dir = config.work_dir.join(format!("{job_name}-spills"));
    std::fs::create_dir_all(&spill_dir).map_err(io_err)?;
    let reduce_tasks = config.reduce_tasks.max(1);

    // --- Map phase: each task handles a slice of the input files. ---
    let map_tasks = config.map_tasks.max(1).min(inputs.len().max(1));
    let mut map_span = tracer.span("mapreduce.map");
    map_span.field("job", job_name).field("tasks", map_tasks);
    // Each join yields the task's own Result; a panicked task surfaces as
    // an Err from join, which the loop below turns into a PlatformError —
    // a failed map task becomes a failed job, not a harness crash.
    let map_results = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for task in 0..map_tasks {
            let spill_dir = &spill_dir;
            let inputs = &inputs;
            handles.push(
                scope.spawn(move |_| -> Result<(usize, usize, usize), PlatformError> {
                    probe_task_attempts(ctx, map_job_fp, task as u32)?;
                    let mut input_count = 0usize;
                    let mut output_count = 0usize;
                    let mut spilled = 0usize;
                    // Per-reducer buffers for this map task.
                    let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); reduce_tasks];
                    for (i, input) in inputs.iter().enumerate() {
                        if i % map_tasks != task {
                            continue;
                        }
                        for (k, v) in read_records(input)? {
                            input_count += 1;
                            let mut emitter = Emitter::default();
                            mapper.map(&k, &v, &mut emitter);
                            for (ok, ov) in emitter.records {
                                let p = (mix64(fx_hash(&ok)) % reduce_tasks as u64) as usize;
                                buckets[p].push((ok, ov));
                                output_count += 1;
                            }
                        }
                    }
                    // Sort and spill each bucket (Hadoop's sort-based shuffle).
                    for (p, mut bucket) in buckets.into_iter().enumerate() {
                        bucket.sort();
                        let path = spill_dir.join(format!("map-{task}-part-{p}"));
                        spilled += bucket
                            .iter()
                            .map(|(k, v)| k.len() + v.len() + 2)
                            .sum::<usize>();
                        write_records(&path, &bucket)?;
                    }
                    Ok((input_count, output_count, spilled))
                }),
            );
        }
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    })
    .map_err(|_| PlatformError::Internal("map scope failed".to_string()))?;
    let mut counters = JobCounters::default();
    let map_span_id = map_span.id();
    for (task, r) in map_results.into_iter().enumerate() {
        let (i, o, s) =
            r.map_err(|_| PlatformError::Internal("map task panicked".to_string()))??;
        // One work-distribution event per map task: straggler tasks are
        // what the skew choke point measures for MapReduce.
        tracer.event(
            "mapreduce.task",
            map_span_id,
            vec![
                ("phase".to_string(), "map".into()),
                ("task".to_string(), task.into()),
                ("work".to_string(), i.into()),
                ("output".to_string(), o.into()),
                ("spilled".to_string(), s.into()),
            ],
        );
        counters.map_input += i;
        counters.map_output += o;
        counters.spill_bytes += s;
    }
    map_span
        .field("map_input", counters.map_input)
        .field("map_output", counters.map_output)
        .field("spill_bytes", counters.spill_bytes)
        // Locality proxies: input files stream sequentially; every mapped
        // record hash-partitions into a random reducer bucket.
        .field("seq_accesses", counters.map_input)
        .field("rand_accesses", counters.map_output);
    drop(map_span);

    // --- Reduce phase: each task merges its partition's spills. ---
    let mut reduce_span = tracer.span("mapreduce.reduce");
    reduce_span
        .field("job", job_name)
        .field("tasks", reduce_tasks);
    let reduce_results = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..reduce_tasks {
            let spill_dir = &spill_dir;
            handles.push(scope.spawn(
                move |_| -> Result<
                    (usize, std::collections::BTreeMap<String, i64>),
                    PlatformError,
                > {
                    probe_task_attempts(ctx, reduce_job_fp, p as u32)?;
                    // Merge the sorted spill fragments for this partition.
                    let mut records: Vec<Record> = Vec::new();
                    for task in 0..map_tasks {
                        let path = spill_dir.join(format!("map-{task}-part-{p}"));
                        if path.exists() {
                            records.extend(read_records(&path)?);
                        }
                    }
                    records.sort();
                    // Group by key and reduce.
                    let mut out = Emitter::default();
                    let mut user = std::collections::BTreeMap::new();
                    let mut idx = 0usize;
                    while idx < records.len() {
                        let key = records[idx].0.clone();
                        let mut values = Vec::new();
                        while idx < records.len() && records[idx].0 == key {
                            values.push(std::mem::take(&mut records[idx].1));
                            idx += 1;
                        }
                        let mut ctx = ReduceContext {
                            out: &mut out,
                            counters: &mut user,
                        };
                        reducer.reduce(&key, &values, &mut ctx);
                    }
                    let part = output_dir.join(format!("part-{p:05}"));
                    write_records(&part, &out.records)?;
                    Ok((out.records.len(), user))
                },
            ));
        }
        handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
    })
    .map_err(|_| PlatformError::Internal("reduce scope failed".to_string()))?;
    let reduce_span_id = reduce_span.id();
    for (task, r) in reduce_results.into_iter().enumerate() {
        let (count, user) =
            r.map_err(|_| PlatformError::Internal("reduce task panicked".to_string()))??;
        tracer.event(
            "mapreduce.task",
            reduce_span_id,
            vec![
                ("phase".to_string(), "reduce".into()),
                ("task".to_string(), task.into()),
                ("work".to_string(), count.into()),
            ],
        );
        counters.reduce_output += count;
        for (k, v) in user {
            *counters.user.entry(k).or_insert(0) += v;
        }
    }
    reduce_span
        .field("reduce_output", counters.reduce_output)
        // The sorted-spill merge streams each fragment sequentially.
        .field("seq_accesses", counters.reduce_output)
        .field("rand_accesses", 0usize);
    drop(reduce_span);
    job_span
        .field("map_input", counters.map_input)
        .field("map_output", counters.map_output)
        .field("reduce_output", counters.reduce_output)
        .field("spill_bytes", counters.spill_bytes);
    // Clean intermediate spills (Hadoop removes them after the job).
    // lint:allow(swallowed-result): spill cleanup is cosmetic; the job's outputs are already spilled and counted
    let _ = std::fs::remove_dir_all(&spill_dir);
    Ok(counters)
}

fn fx_hash(s: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = rustc_hash::FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gx-mr-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The canonical word count.
    struct TokenMapper;
    impl Mapper for TokenMapper {
        fn map(&self, _key: &str, value: &str, out: &mut Emitter) {
            for token in value.split_whitespace() {
                out.emit(token, "1");
            }
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
            let total: u64 = values.iter().map(|v| v.parse::<u64>().unwrap_or(0)).sum();
            out.emit(key, total.to_string());
        }
    }

    #[test]
    fn word_count_end_to_end() {
        let dir = tmp("wc");
        let input = dir.join("input-0");
        write_records(
            &input,
            &[
                ("0".into(), "the quick brown fox".into()),
                ("1".into(), "the lazy dog the end".into()),
            ],
        )
        .unwrap();
        let config = JobConfig::new(&dir);
        let out_dir = dir.join("out");
        let counters = run_job(
            &config,
            "wordcount",
            &[input],
            &TokenMapper,
            &SumReducer,
            &out_dir,
        )
        .unwrap();
        assert_eq!(counters.map_input, 2);
        assert_eq!(counters.map_output, 9);
        assert!(counters.spill_bytes > 0);
        let mut output = read_output(&out_dir).unwrap();
        output.sort();
        let the = output.iter().find(|(k, _)| k == "the").unwrap();
        assert_eq!(the.1, "3");
        assert_eq!(output.len(), 7);
        assert_eq!(counters.reduce_output, 7);
    }

    #[test]
    fn traced_job_emits_job_and_phase_spans_matching_counters() {
        use graphalytics_core::trace::{FieldValue, Tracer};
        use std::sync::Arc;

        let dir = tmp("spans");
        let input = dir.join("input-0");
        write_records(&input, &[("0".into(), "a b a".into())]).unwrap();
        let tracer = Arc::new(Tracer::new());
        let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
        let counters = run_job_traced(
            &JobConfig::new(&dir),
            "wc",
            &[input],
            &TokenMapper,
            &SumReducer,
            &dir.join("out"),
            &ctx,
        )
        .unwrap();

        let spans = tracer.finished_spans();
        let job = spans.iter().find(|s| s.name == "mapreduce.job").unwrap();
        assert_eq!(job.field("job"), Some(&FieldValue::Str("wc".into())));
        assert_eq!(
            job.field("map_output").and_then(|f| f.as_i64()),
            Some(counters.map_output as i64)
        );
        assert_eq!(
            job.field("reduce_output").and_then(|f| f.as_i64()),
            Some(counters.reduce_output as i64)
        );
        for phase in ["mapreduce.map", "mapreduce.reduce"] {
            let s = spans.iter().find(|s| s.name == phase).unwrap();
            assert_eq!(s.parent, Some(job.id), "{phase} nests under the job");
        }
    }

    #[test]
    fn records_round_trip_via_disk() {
        let dir = tmp("rt");
        let path = dir.join("records");
        let records = vec![
            ("a".to_string(), "1 2".to_string()),
            ("b".to_string(), String::new()),
        ];
        write_records(&path, &records).unwrap();
        assert_eq!(read_records(&path).unwrap(), records);
    }

    #[test]
    fn user_counters_propagate() {
        struct CountingRed;
        impl CountingReducer for CountingRed {
            fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>) {
                *ctx.counters.entry("keys".into()).or_insert(0) += 1;
                ctx.out.emit(key, values.len().to_string());
            }
        }
        let dir = tmp("counters");
        let input = dir.join("in");
        write_records(
            &input,
            &[("x".into(), "a b a".into()), ("y".into(), "c".into())],
        )
        .unwrap();
        let counters = run_job(
            &JobConfig::new(&dir),
            "count",
            &[input],
            &TokenMapper,
            &CountingRed,
            &dir.join("out"),
        )
        .unwrap();
        assert_eq!(counters.user_counter("keys"), 3); // a, b, c.
        assert_eq!(counters.user_counter("missing"), 0);
    }

    #[test]
    fn multiple_inputs_distribute_across_map_tasks() {
        let dir = tmp("multi");
        let mut inputs = Vec::new();
        for i in 0..6 {
            let p = dir.join(format!("in-{i}"));
            write_records(&p, &[(i.to_string(), format!("w{i}"))]).unwrap();
            inputs.push(p);
        }
        let counters = run_job(
            &JobConfig::new(&dir),
            "multi",
            &inputs,
            &TokenMapper,
            &SumReducer,
            &dir.join("out"),
        )
        .unwrap();
        assert_eq!(counters.map_input, 6);
        assert_eq!(read_output(&dir.join("out")).unwrap().len(), 6);
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let dir = tmp("empty");
        let input = dir.join("in");
        write_records(&input, &[]).unwrap();
        let counters = run_job(
            &JobConfig::new(&dir),
            "empty",
            &[input],
            &TokenMapper,
            &SumReducer,
            &dir.join("out"),
        )
        .unwrap();
        assert_eq!(counters.map_input, 0);
        assert!(read_output(&dir.join("out")).unwrap().is_empty());
    }

    #[test]
    fn injected_task_io_fault_retries_and_succeeds() {
        use graphalytics_core::faults::{FaultInjector, FaultPlan, FaultSite};
        use std::sync::Arc;

        let dir = tmp("taskio");
        let input = dir.join("in");
        write_records(&input, &[("0".into(), "a b a".into())]).unwrap();
        let baseline = run_job(
            &JobConfig::new(&dir),
            "flaky",
            std::slice::from_ref(&input),
            &TokenMapper,
            &SumReducer,
            &dir.join("out-base"),
        )
        .unwrap();

        // Fail the first attempt of map task 0; attempt 1 must succeed.
        let plan = FaultPlan::disabled().force(FaultSite::TaskIo {
            job: fingerprint("flaky#map"),
            task: 0,
            attempt: 0,
        });
        let injector = Arc::new(FaultInjector::new(plan));
        let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
        let counters = run_job_traced(
            &JobConfig::new(&dir),
            "flaky",
            &[input],
            &TokenMapper,
            &SumReducer,
            &dir.join("out-faulty"),
            &ctx,
        )
        .unwrap();
        assert_eq!(counters, baseline);
        assert_eq!(
            read_output(&dir.join("out-faulty")).unwrap(),
            read_output(&dir.join("out-base")).unwrap()
        );
        assert_eq!(injector.injected_count(), 1);
        assert_eq!(injector.recovery_count(), 1);
    }

    #[test]
    fn task_attempt_budget_exhaustion_fails_the_job() {
        use graphalytics_core::faults::{FaultInjector, FaultPlan, FaultSite};
        use std::sync::Arc;

        let dir = tmp("taskio-fatal");
        let input = dir.join("in");
        write_records(&input, &[("0".into(), "a".into())]).unwrap();
        let mut plan = FaultPlan::disabled();
        for attempt in 0..MAX_TASK_ATTEMPTS {
            plan = plan.force(FaultSite::TaskIo {
                job: fingerprint("doomed#reduce"),
                task: 2,
                attempt,
            });
        }
        let injector = Arc::new(FaultInjector::new(plan));
        let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
        let err = run_job_traced(
            &JobConfig::new(&dir),
            "doomed",
            &[input],
            &TokenMapper,
            &SumReducer,
            &dir.join("out"),
            &ctx,
        );
        match err {
            Err(PlatformError::TransientIo(_)) => {}
            other => panic!("expected TransientIo, got {other:?}"),
        }
        assert_eq!(injector.injected_count(), MAX_TASK_ATTEMPTS as usize);
        assert_eq!(injector.recovery_count(), (MAX_TASK_ATTEMPTS - 1) as usize);
    }

    #[test]
    fn spills_are_cleaned_after_job() {
        let dir = tmp("clean");
        let input = dir.join("in");
        write_records(&input, &[("0".into(), "a".into())]).unwrap();
        run_job(
            &JobConfig::new(&dir),
            "cleanme",
            &[input],
            &TokenMapper,
            &SumReducer,
            &dir.join("out"),
        )
        .unwrap();
        assert!(!dir.join("cleanme-spills").exists());
    }
}
