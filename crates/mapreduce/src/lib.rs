//! # graphalytics-mapreduce
//!
//! A disk-backed MapReduce runtime and the Graphalytics workload as
//! iterative job chains — the Hadoop MapReduce v2 stand-in (paper §3.2).
//!
//! * [`job`] — the runtime: map tasks, sort/spill, shuffle partitions,
//!   reduce tasks, counters; all intermediates cross real files;
//! * [`algorithms`] — the kernels as propagate/update job chains;
//! * [`platform`] — the [`MapReducePlatform`] harness adapter.

pub mod algorithms;
pub mod job;
pub mod platform;

pub use job::{run_job, Emitter, JobConfig, JobCounters, Mapper, Reducer};
pub use platform::{MapReduceConfig, MapReducePlatform};
