//! The Graphalytics workload as iterative MapReduce job chains.
//!
//! Every kernel is a driver loop over [`run_job`] invocations; state between
//! iterations lives in files, and every iteration re-reads the edge files —
//! the structural reason MapReduce graph processing is "two orders of
//! magnitude slower than Giraph and GraphX" (paper §3.3) while never
//! running out of memory.
//!
//! Record formats (key `\t` value):
//! * edge files: key = vertex, value = `E <neighbor>` (one record per arc);
//! * weighted edge files: value = `W <neighbor> <weight>` (fixed-point
//!   weight, one record per arc — the SSSP inputs);
//! * label/state files: value = `L <label>` (CONN), `D <depth>` (BFS),
//!   `T <distance>` (SSSP), `S <label> <score>` (CD), `R <rank>`
//!   (PageRank), `N <n1,n2,...>` (adjacency lists).

use std::path::{Path, PathBuf};

use graphalytics_core::platform::{PlatformError, RunContext};
use rustc_hash::FxHashMap;

use crate::job::{
    read_output, run_job_traced, write_records, Emitter, JobConfig, Mapper, Record, ReduceContext,
    Reducer,
};

/// Identity mapper: inputs are already keyed correctly.
struct IdentityMapper;

impl Mapper for IdentityMapper {
    fn map(&self, key: &str, value: &str, out: &mut Emitter) {
        out.emit(key, value);
    }
}

fn internal_err(what: &str) -> PlatformError {
    PlatformError::Internal(format!("malformed record: {what}"))
}

/// Parses per-vertex output values of the form `v -> "X payload"` into a
/// dense vector indexed by vertex id.
fn collect_per_vertex<T>(
    records: &[Record],
    n: usize,
    tag: &str,
    parse: impl Fn(&str) -> Option<T>,
    default: T,
) -> Result<Vec<T>, PlatformError>
where
    T: Clone,
{
    let mut out = vec![default; n];
    for (k, v) in records {
        let Some(rest) = v.strip_prefix(tag) else {
            continue;
        };
        let idx: usize = k.parse().map_err(|_| internal_err(k))?;
        if idx >= n {
            return Err(internal_err(k));
        }
        out[idx] = parse(rest.trim()).ok_or_else(|| internal_err(v))?;
    }
    Ok(out)
}

// ---------------------------------------------------------------- CONN --

/// Propagation reducer: joins labels with edges at each vertex and emits
/// label candidates to all neighbors.
struct PropagateLabels;

impl Reducer for PropagateLabels {
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        let mut label: Option<&str> = None;
        let mut neighbors = Vec::new();
        for v in values {
            if let Some(l) = v.strip_prefix("L ") {
                label = Some(l);
            } else if let Some(n) = v.strip_prefix("E ") {
                neighbors.push(n);
            }
        }
        let Some(label) = label else { return };
        out.emit(key, format!("L {label}"));
        for n in neighbors {
            out.emit(n, format!("C {label}"));
        }
    }
}

/// Update reducer: takes the own label plus candidates, keeps the minimum,
/// and counts changes.
struct UpdateMinLabel;

impl crate::job::CountingReducer for UpdateMinLabel {
    fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>) {
        let mut own: Option<u64> = None;
        let mut best: Option<u64> = None;
        for v in values {
            if let Some(l) = v.strip_prefix("L ") {
                own = l.trim().parse().ok();
            } else if let Some(c) = v.strip_prefix("C ") {
                let c: Option<u64> = c.trim().parse().ok();
                best = match (best, c) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        let Some(own) = own else { return };
        let new = best.map_or(own, |b| b.min(own));
        if new < own {
            *ctx.counters.entry("changed".into()).or_insert(0) += 1;
        }
        ctx.out.emit(key, format!("L {new}"));
    }
}

/// Connected components: alternate propagate/update jobs until no label
/// changes. `edge_files` hold `E`-tagged arcs; `n` is the vertex count.
pub fn connected_components(
    config: &JobConfig,
    edge_files: &[PathBuf],
    n: usize,
    ctx: &RunContext,
) -> Result<Vec<u32>, PlatformError> {
    // Initial labels: own id.
    let mut labels_file = config.work_dir.join("conn-labels-0");
    let init: Vec<Record> = (0..n).map(|v| (v.to_string(), format!("L {v}"))).collect();
    write_records(&labels_file, &init)?;
    let mut iteration = 0usize;
    loop {
        ctx.check_deadline()?;
        let mut inputs = edge_files.to_vec();
        inputs.push(labels_file.clone());
        let prop_dir = config.work_dir.join(format!("conn-prop-{iteration}"));
        run_job_traced(
            config,
            &format!("conn-prop-{iteration}"),
            &inputs,
            &IdentityMapper,
            &PropagateLabels,
            &prop_dir,
            ctx,
        )?;
        ctx.check_deadline()?;
        let prop_files = part_files(&prop_dir)?;
        let update_dir = config.work_dir.join(format!("conn-update-{iteration}"));
        let counters = run_job_traced(
            config,
            &format!("conn-update-{iteration}"),
            &prop_files,
            &IdentityMapper,
            &UpdateMinLabel,
            &update_dir,
            ctx,
        )?;
        // Concatenate the update output into the next labels file.
        let records = read_output(&update_dir)?;
        labels_file = config
            .work_dir
            .join(format!("conn-labels-{}", iteration + 1));
        write_records(&labels_file, &records)?;
        if counters.user_counter("changed") == 0 {
            let labels = collect_per_vertex(&records, n, "L", |s| s.parse().ok(), 0u32)?;
            return Ok(labels);
        }
        iteration += 1;
    }
}

// ----------------------------------------------------------------- BFS --

/// BFS propagate: vertices with a depth send `depth + 1` to neighbors.
struct PropagateDepths;

impl Reducer for PropagateDepths {
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        let mut depth: Option<i64> = None;
        let mut neighbors = Vec::new();
        for v in values {
            if let Some(d) = v.strip_prefix("D ") {
                depth = d.trim().parse().ok();
            } else if let Some(n) = v.strip_prefix("E ") {
                neighbors.push(n);
            }
        }
        let Some(depth) = depth else { return };
        out.emit(key, format!("D {depth}"));
        if depth >= 0 {
            for n in neighbors {
                out.emit(n, format!("C {}", depth + 1));
            }
        }
    }
}

/// BFS update: unreached vertices adopt the minimum candidate depth.
struct UpdateDepths;

impl crate::job::CountingReducer for UpdateDepths {
    fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>) {
        let mut own: Option<i64> = None;
        let mut best: Option<i64> = None;
        for v in values {
            if let Some(d) = v.strip_prefix("D ") {
                own = d.trim().parse().ok();
            } else if let Some(c) = v.strip_prefix("C ") {
                let c: Option<i64> = c.trim().parse().ok();
                best = match (best, c) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        let Some(own) = own else { return };
        let new = if own < 0 { best.unwrap_or(own) } else { own };
        if new != own {
            *ctx.counters.entry("changed".into()).or_insert(0) += 1;
        }
        ctx.out.emit(key, format!("D {new}"));
    }
}

/// BFS from `source` (internal id; `None` = unreachable everywhere).
pub fn bfs(
    config: &JobConfig,
    edge_files: &[PathBuf],
    n: usize,
    source: Option<u32>,
    ctx: &RunContext,
) -> Result<Vec<i64>, PlatformError> {
    let mut depth_file = config.work_dir.join("bfs-depths-0");
    let init: Vec<Record> = (0..n)
        .map(|v| {
            let d = if Some(v as u32) == source { 0 } else { -1 };
            (v.to_string(), format!("D {d}"))
        })
        .collect();
    write_records(&depth_file, &init)?;
    let mut iteration = 0usize;
    loop {
        ctx.check_deadline()?;
        let mut inputs = edge_files.to_vec();
        inputs.push(depth_file.clone());
        let prop_dir = config.work_dir.join(format!("bfs-prop-{iteration}"));
        run_job_traced(
            config,
            &format!("bfs-prop-{iteration}"),
            &inputs,
            &IdentityMapper,
            &PropagateDepths,
            &prop_dir,
            ctx,
        )?;
        ctx.check_deadline()?;
        let update_dir = config.work_dir.join(format!("bfs-update-{iteration}"));
        let counters = run_job_traced(
            config,
            &format!("bfs-update-{iteration}"),
            &part_files(&prop_dir)?,
            &IdentityMapper,
            &UpdateDepths,
            &update_dir,
            ctx,
        )?;
        let records = read_output(&update_dir)?;
        depth_file = config
            .work_dir
            .join(format!("bfs-depths-{}", iteration + 1));
        write_records(&depth_file, &records)?;
        if counters.user_counter("changed") == 0 {
            return collect_per_vertex(&records, n, "D", |s| s.parse().ok(), -1i64);
        }
        iteration += 1;
    }
}

// ---------------------------------------------------------------- SSSP --

/// SSSP propagate: vertices with a finite distance send `dist + weight`
/// along each weighted arc (`W <neighbor> <weight>` records).
struct PropagateDistances;

impl Reducer for PropagateDistances {
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        let mut dist: Option<u64> = None;
        let mut arcs: Vec<(&str, u64)> = Vec::new();
        for v in values {
            if let Some(d) = v.strip_prefix("T ") {
                dist = d.trim().parse().ok();
            } else if let Some(a) = v.strip_prefix("W ") {
                let mut parts = a.split_whitespace();
                let neighbor = parts.next();
                let weight = parts.next().and_then(|x| x.parse().ok());
                if let (Some(n), Some(w)) = (neighbor, weight) {
                    arcs.push((n, w));
                }
            }
        }
        let Some(dist) = dist else { return };
        out.emit(key, format!("T {dist}"));
        if dist != graphalytics_algos::INFINITY {
            for (n, w) in arcs {
                out.emit(n, format!("C {}", dist.saturating_add(w)));
            }
        }
    }
}

/// SSSP update: vertices adopt the minimum candidate distance when it
/// improves on their own.
struct UpdateDistances;

impl crate::job::CountingReducer for UpdateDistances {
    fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>) {
        let mut own: Option<u64> = None;
        let mut best: Option<u64> = None;
        for v in values {
            if let Some(d) = v.strip_prefix("T ") {
                own = d.trim().parse().ok();
            } else if let Some(c) = v.strip_prefix("C ") {
                let c: Option<u64> = c.trim().parse().ok();
                best = match (best, c) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        let Some(own) = own else { return };
        let new = best.map_or(own, |b| b.min(own));
        if new < own {
            *ctx.counters.entry("changed".into()).or_insert(0) += 1;
        }
        ctx.out.emit(key, format!("T {new}"));
    }
}

/// SSSP from `source` (internal id; `None` = unreachable everywhere):
/// Bellman-Ford rounds over the weighted edge files until no distance
/// improves.
pub fn sssp(
    config: &JobConfig,
    weighted_edge_files: &[PathBuf],
    n: usize,
    source: Option<u32>,
    ctx: &RunContext,
) -> Result<Vec<u64>, PlatformError> {
    let inf = graphalytics_algos::INFINITY;
    let mut dist_file = config.work_dir.join("sssp-dists-0");
    let init: Vec<Record> = (0..n)
        .map(|v| {
            let d = if Some(v as u32) == source { 0 } else { inf };
            (v.to_string(), format!("T {d}"))
        })
        .collect();
    write_records(&dist_file, &init)?;
    let mut iteration = 0usize;
    loop {
        ctx.check_deadline()?;
        let mut inputs = weighted_edge_files.to_vec();
        inputs.push(dist_file.clone());
        let prop_dir = config.work_dir.join(format!("sssp-prop-{iteration}"));
        run_job_traced(
            config,
            &format!("sssp-prop-{iteration}"),
            &inputs,
            &IdentityMapper,
            &PropagateDistances,
            &prop_dir,
            ctx,
        )?;
        ctx.check_deadline()?;
        let update_dir = config.work_dir.join(format!("sssp-update-{iteration}"));
        let counters = run_job_traced(
            config,
            &format!("sssp-update-{iteration}"),
            &part_files(&prop_dir)?,
            &IdentityMapper,
            &UpdateDistances,
            &update_dir,
            ctx,
        )?;
        let records = read_output(&update_dir)?;
        dist_file = config
            .work_dir
            .join(format!("sssp-dists-{}", iteration + 1));
        write_records(&dist_file, &records)?;
        if counters.user_counter("changed") == 0 {
            return collect_per_vertex(&records, n, "T", |s| s.parse().ok(), inf);
        }
        iteration += 1;
    }
}

// ------------------------------------------------------------------ CD --

/// CD propagate: each vertex ships `(label, score, influence)` to all
/// neighbors; influence uses the vertex's degree (the count of E records).
struct PropagateCommunities {
    degree_exponent: f64,
}

impl Reducer for PropagateCommunities {
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        let mut state: Option<(u64, f64)> = None;
        let mut neighbors = Vec::new();
        for v in values {
            if let Some(s) = v.strip_prefix("S ") {
                let mut parts = s.split_whitespace();
                let label = parts.next().and_then(|x| x.parse().ok());
                let score = parts.next().and_then(|x| x.parse().ok());
                if let (Some(l), Some(sc)) = (label, score) {
                    state = Some((l, sc));
                }
            } else if let Some(n) = v.strip_prefix("E ") {
                neighbors.push(n);
            }
        }
        let Some((label, score)) = state else { return };
        out.emit(key, format!("S {label} {score}"));
        let influence = score * (neighbors.len() as f64).powf(self.degree_exponent);
        for n in &neighbors {
            out.emit(*n, format!("C {label} {score} {influence}"));
        }
    }
}

/// CD update: the canonical arg-max from the shared spec.
struct UpdateCommunities {
    hop_attenuation: f64,
}

impl crate::job::CountingReducer for UpdateCommunities {
    fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>) {
        let mut own: Option<(u32, f64)> = None;
        let mut weight: FxHashMap<u32, (Vec<f64>, f64)> = FxHashMap::default();
        for v in values {
            if let Some(s) = v.strip_prefix("S ") {
                let mut parts = s.split_whitespace();
                if let (Some(l), Some(sc)) = (
                    parts.next().and_then(|x| x.parse().ok()),
                    parts.next().and_then(|x| x.parse().ok()),
                ) {
                    own = Some((l, sc));
                }
            } else if let Some(c) = v.strip_prefix("C ") {
                let mut parts = c.split_whitespace();
                let label: Option<u32> = parts.next().and_then(|x| x.parse().ok());
                let score: Option<f64> = parts.next().and_then(|x| x.parse().ok());
                let influence: Option<f64> = parts.next().and_then(|x| x.parse().ok());
                if let (Some(l), Some(s), Some(i)) = (label, score, influence) {
                    let entry = weight.entry(l).or_insert((Vec::new(), 0.0));
                    entry.0.push(i);
                    entry.1 = entry.1.max(s);
                }
            }
        }
        let Some((own_label, own_score)) = own else {
            return;
        };
        if weight.is_empty() {
            ctx.out.emit(key, format!("S {own_label} {own_score}"));
            return;
        }
        let (best_label, _w, best_score) = graphalytics_algos::cd::argmax_label(&mut weight);
        let (new_label, new_score) = if best_label != own_label {
            *ctx.counters.entry("changed".into()).or_insert(0) += 1;
            (best_label, best_score * (1.0 - self.hop_attenuation))
        } else {
            (own_label, best_score.max(own_score))
        };
        ctx.out.emit(key, format!("S {new_label} {new_score}"));
    }
}

/// Community detection: `iterations` propagate/update rounds with the
/// reference's early stop.
pub fn community_detection(
    config: &JobConfig,
    edge_files: &[PathBuf],
    n: usize,
    iterations: usize,
    hop_attenuation: f64,
    degree_exponent: f64,
    ctx: &RunContext,
) -> Result<Vec<u32>, PlatformError> {
    let mut state_file = config.work_dir.join("cd-state-0");
    let init: Vec<Record> = (0..n)
        .map(|v| (v.to_string(), format!("S {v} 1")))
        .collect();
    write_records(&state_file, &init)?;
    let mut final_records = init;
    for round in 0..iterations {
        ctx.check_deadline()?;
        let mut inputs = edge_files.to_vec();
        inputs.push(state_file.clone());
        let prop_dir = config.work_dir.join(format!("cd-prop-{round}"));
        run_job_traced(
            config,
            &format!("cd-prop-{round}"),
            &inputs,
            &IdentityMapper,
            &PropagateCommunities { degree_exponent },
            &prop_dir,
            ctx,
        )?;
        ctx.check_deadline()?;
        let update_dir = config.work_dir.join(format!("cd-update-{round}"));
        let counters = run_job_traced(
            config,
            &format!("cd-update-{round}"),
            &part_files(&prop_dir)?,
            &IdentityMapper,
            &UpdateCommunities { hop_attenuation },
            &update_dir,
            ctx,
        )?;
        final_records = read_output(&update_dir)?;
        state_file = config.work_dir.join(format!("cd-state-{}", round + 1));
        write_records(&state_file, &final_records)?;
        if counters.user_counter("changed") == 0 {
            break;
        }
    }
    collect_per_vertex(
        &final_records,
        n,
        "S",
        |s| s.split_whitespace().next()?.parse().ok(),
        0u32,
    )
}

// --------------------------------------------------------------- STATS --

/// Builds sorted adjacency lists.
struct AdjacencyReducer;

impl Reducer for AdjacencyReducer {
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        let mut neighbors: Vec<u64> = values
            .iter()
            .filter_map(|v| v.strip_prefix("E "))
            .filter_map(|n| n.trim().parse().ok())
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        let list = neighbors
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        out.emit(key, format!("N {list}"));
    }
}

/// Ships each adjacency list to every neighbor (map side) so the reducer
/// at each vertex can intersect.
struct ShipListsMapper;

impl Mapper for ShipListsMapper {
    fn map(&self, key: &str, value: &str, out: &mut Emitter) {
        let Some(list) = value.strip_prefix("N ") else {
            return;
        };
        out.emit(key, format!("OWN {list}"));
        for n in list.split(',').filter(|s| !s.is_empty()) {
            out.emit(n, format!("NB {list}"));
        }
    }
}

/// Computes the local clustering coefficient per vertex.
struct LccReducer;

impl Reducer for LccReducer {
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        let mut own: Vec<u64> = Vec::new();
        let mut received: Vec<Vec<u64>> = Vec::new();
        for v in values {
            if let Some(list) = v.strip_prefix("OWN ") {
                own = parse_list(list);
            } else if let Some(list) = v.strip_prefix("NB ") {
                received.push(parse_list(list));
            }
        }
        let d = own.len();
        if d < 2 {
            out.emit(key, "LCC 0".to_string());
            return;
        }
        let mut links = 0usize;
        for list in &received {
            links += sorted_intersection_u64(&own, list);
        }
        let triangles = links / 2;
        let lcc = triangles as f64 / (d * (d - 1) / 2) as f64;
        out.emit(key, format!("LCC {lcc}"));
    }
}

fn parse_list(list: &str) -> Vec<u64> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

fn sorted_intersection_u64(a: &[u64], b: &[u64]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Runs the adjacency job followed by the list-shipping triangle job and
/// returns the raw per-vertex `LCC <coefficient>` records.
fn lcc_records(
    config: &JobConfig,
    edge_files: &[PathBuf],
    ctx: &RunContext,
) -> Result<Vec<Record>, PlatformError> {
    ctx.check_deadline()?;
    let adj_dir = config.work_dir.join("stats-adjacency");
    run_job_traced(
        config,
        "stats-adjacency",
        edge_files,
        &IdentityMapper,
        &AdjacencyReducer,
        &adj_dir,
        ctx,
    )?;
    ctx.check_deadline()?;
    let lcc_dir = config.work_dir.join("stats-lcc");
    run_job_traced(
        config,
        "stats-lcc",
        &part_files(&adj_dir)?,
        &ShipListsMapper,
        &LccReducer,
        &lcc_dir,
        ctx,
    )?;
    read_output(&lcc_dir)
}

/// STATS: adjacency job, then the list-shipping triangle job; the mean is
/// computed client-side from the per-vertex LCC records.
pub fn mean_local_cc(
    config: &JobConfig,
    edge_files: &[PathBuf],
    n: usize,
    ctx: &RunContext,
) -> Result<f64, PlatformError> {
    if n == 0 {
        return Ok(0.0);
    }
    let records = lcc_records(config, edge_files, ctx)?;
    let mut sum = 0.0f64;
    for (_k, v) in &records {
        if let Some(x) = v.strip_prefix("LCC ") {
            sum += x.trim().parse::<f64>().unwrap_or(0.0);
        }
    }
    Ok(sum / n as f64)
}

/// LCC: the same job chain as STATS, but the per-vertex coefficients are
/// the output (vertices with no record — degree < 2 — stay at 0).
pub fn local_clustering(
    config: &JobConfig,
    edge_files: &[PathBuf],
    n: usize,
    ctx: &RunContext,
) -> Result<Vec<f64>, PlatformError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let records = lcc_records(config, edge_files, ctx)?;
    collect_per_vertex(&records, n, "LCC", |s| s.parse().ok(), 0.0f64)
}

// ------------------------------------------------------------ PageRank --

/// PR propagate: each vertex sends `rank / degree` to neighbors; dangling
/// rank goes into a user counter (micro-units) the driver carries to the
/// next round through the job configuration.
struct PropagateRank;

impl crate::job::CountingReducer for PropagateRank {
    fn reduce(&self, key: &str, values: &[String], ctx: &mut ReduceContext<'_>) {
        let mut rank: Option<f64> = None;
        let mut neighbors = Vec::new();
        for v in values {
            if let Some(r) = v.strip_prefix("R ") {
                rank = r.trim().parse().ok();
            } else if let Some(n) = v.strip_prefix("E ") {
                neighbors.push(n);
            }
        }
        let Some(rank) = rank else { return };
        ctx.out.emit(key, format!("R {rank}"));
        if neighbors.is_empty() {
            // Fixed-point micro-units so the counter is an integer.
            let micros = (rank * 1e12).round() as i64;
            *ctx.counters.entry("dangling_micros".into()).or_insert(0) += micros;
        } else {
            let share = rank / neighbors.len() as f64;
            for n in neighbors {
                ctx.out.emit(n, format!("C {share}"));
            }
        }
    }
}

/// PR update with the round's dangling mass injected by the driver.
struct UpdateRank {
    damping: f64,
    n: f64,
    dangling: f64,
}

impl Reducer for UpdateRank {
    fn reduce(&self, key: &str, values: &[String], out: &mut Emitter) {
        let mut seen = false;
        let mut contributions: Vec<f64> = Vec::new();
        for v in values {
            if v.starts_with("R ") {
                seen = true;
            } else if let Some(c) = v.strip_prefix("C ") {
                if let Ok(x) = c.trim().parse::<f64>() {
                    contributions.push(x);
                }
            }
        }
        if !seen {
            return;
        }
        contributions.sort_by(|a, b| a.total_cmp(b));
        let received: f64 = contributions.iter().sum();
        let base = (1.0 - self.damping) / self.n + self.damping * self.dangling / self.n;
        let rank = base + self.damping * received;
        out.emit(key, format!("R {rank}"));
    }
}

/// PageRank: fixed iteration count.
pub fn pagerank(
    config: &JobConfig,
    edge_files: &[PathBuf],
    n: usize,
    iterations: usize,
    damping: f64,
    ctx: &RunContext,
) -> Result<Vec<f64>, PlatformError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut rank_file = config.work_dir.join("pr-ranks-0");
    let init: Vec<Record> = (0..n)
        .map(|v| (v.to_string(), format!("R {}", 1.0 / n as f64)))
        .collect();
    write_records(&rank_file, &init)?;
    let mut final_records = init;
    for round in 0..iterations {
        ctx.check_deadline()?;
        let mut inputs = edge_files.to_vec();
        inputs.push(rank_file.clone());
        let prop_dir = config.work_dir.join(format!("pr-prop-{round}"));
        let counters = run_job_traced(
            config,
            &format!("pr-prop-{round}"),
            &inputs,
            &IdentityMapper,
            &PropagateRank,
            &prop_dir,
            ctx,
        )?;
        let dangling = counters.user_counter("dangling_micros") as f64 / 1e12;
        ctx.check_deadline()?;
        let update_dir = config.work_dir.join(format!("pr-update-{round}"));
        run_job_traced(
            config,
            &format!("pr-update-{round}"),
            &part_files(&prop_dir)?,
            &IdentityMapper,
            &UpdateRank {
                damping,
                n: n as f64,
                dangling,
            },
            &update_dir,
            ctx,
        )?;
        final_records = read_output(&update_dir)?;
        rank_file = config.work_dir.join(format!("pr-ranks-{}", round + 1));
        write_records(&rank_file, &final_records)?;
    }
    collect_per_vertex(&final_records, n, "R", |s| s.parse().ok(), 1.0 / n as f64)
}

// ----------------------------------------------------------------- EVO --

/// EVO: one adjacency job, then the spec'd forest-fire walk runs in the
/// driver over the job output (the Hadoop pattern for small sequential
/// post-processing).
#[allow(clippy::too_many_arguments)]
pub fn forest_fire(
    config: &JobConfig,
    edge_files: &[PathBuf],
    external_ids: &[u64],
    new_vertices: usize,
    p_forward: f64,
    max_burst: usize,
    seed: u64,
    ctx: &RunContext,
) -> Result<Vec<(u64, u64)>, PlatformError> {
    let n = external_ids.len();
    if n == 0 || new_vertices == 0 {
        return Ok(Vec::new());
    }
    ctx.check_deadline()?;
    let adj_dir = config.work_dir.join("evo-adjacency");
    run_job_traced(
        config,
        "evo-adjacency",
        edge_files,
        &IdentityMapper,
        &AdjacencyReducer,
        &adj_dir,
        ctx,
    )?;
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (k, v) in read_output(&adj_dir)? {
        let Some(list) = v.strip_prefix("N ") else {
            continue;
        };
        let idx: usize = k.parse().map_err(|_| internal_err(&k))?;
        if idx >= n {
            return Err(internal_err(&k));
        }
        adjacency[idx] = parse_list(list).into_iter().map(|x| x as u32).collect();
    }
    ctx.check_deadline()?;
    Ok(graphalytics_algos::evo::forest_fire_over_adjacency(
        &adjacency,
        external_ids,
        new_vertices,
        p_forward,
        max_burst,
        seed,
    ))
}

/// Lists the part files of a completed job's output directory.
pub fn part_files(dir: &Path) -> Result<Vec<PathBuf>, PlatformError> {
    let mut parts: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| PlatformError::TransientIo(format!("i/o: {e}")))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|name| name.to_string_lossy().starts_with("part-"))
        })
        .collect();
    parts.sort();
    Ok(parts)
}
