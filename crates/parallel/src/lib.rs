//! # graphalytics-parallel
//!
//! A deterministic parallel runtime: scoped threads with **fixed chunk
//! assignment** and no work stealing, so every parallel computation built on
//! it is a pure function of its input — never of scheduling order, core
//! count, or load.
//!
//! ## The determinism contract
//!
//! The reference ("oracle") implementations validate every platform run
//! (paper §2.4), so their outputs must be bit-reproducible. Parallelism is
//! allowed to change *how fast* an oracle answer arrives, never *which*
//! answer. The primitives here make that property compositional:
//!
//! * **Fixed assignment** — [`chunk_ranges`] splits `0..n` into contiguous
//!   ranges computed only from `(n, parts)`; worker `i` always processes
//!   range `i`. There is no stealing and no shared queue, so the
//!   element-to-worker mapping is reproducible.
//! * **Ordered combination** — [`map_chunks`] and [`map_blocks`] return
//!   per-part results *in part order*, regardless of which worker finished
//!   first. Reductions over them are therefore performed in a fixed order.
//! * **Thread-count invariance** — chunk boundaries do depend on the thread
//!   count, so a kernel that needs byte-identical output at any thread
//!   count must either (a) combine per-chunk results with an associative,
//!   commutative operation (integer sums, min, max, saturating or), or
//!   (b) reduce over [`map_blocks`] with a *fixed* block size, which keeps
//!   the floating-point association independent of the thread count.
//!
//! Kernels additionally may race only through idempotent atomic writes
//! (e.g. BFS level claims where every contender writes the same value) —
//! the winning thread may differ between runs, the stored value may not.
//!
//! The crate is zero-dependency (`std` scoped threads only) and contains
//! no clocks and no entropy, the same invariants `graphalytics-lint`
//! enforces for the kernel crates built on top of it.

use std::ops::Range;

/// Default block size for [`map_blocks`]/[`sum_blocks`]: big enough to
/// amortize dispatch, small enough to load-balance skewed work.
pub const DEFAULT_BLOCK: usize = 4096;

/// Number of worker threads to use when the caller did not specify one:
/// `GX_THREADS` from the environment, else the machine's available
/// parallelism, else 1.
pub fn default_threads() -> usize {
    std::env::var("GX_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Resolves an optional thread-count request: `None` ⇒ [`default_threads`],
/// `Some(0)` is clamped to 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(t) => t.max(1),
        None => default_threads(),
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal ranges — a
/// pure function of `(n, parts)`. Earlier ranges are one element longer
/// when `n` does not divide evenly. Empty ranges are never produced; with
/// `n < parts` fewer than `parts` ranges are returned.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f(part_index, range)` over the fixed chunking of `0..n` on up to
/// `threads` scoped workers. Worker `i` owns exactly chunk `i`; with
/// `threads <= 1` (or a single chunk) everything runs inline on the
/// calling thread. Panics in workers propagate to the caller.
pub fn run_chunks<F>(threads: usize, n: usize, f: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        for (i, r) in ranges.into_iter().enumerate() {
            f(i, r);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (i, r) in ranges.into_iter().enumerate() {
            let f = &f;
            scope.spawn(move || f(i, r));
        }
    });
}

/// Like [`run_chunks`], but collects each chunk's result **in chunk
/// order** — the combination order is independent of completion order.
pub fn map_chunks<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| f(i, r))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let f = &f;
                scope.spawn(move || f(i, r))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Evaluates `f` over fixed-size blocks of `0..n` (the last block may be
/// short) and returns the per-block results **in block order**. Block
/// boundaries depend only on `(n, block)`, never on `threads`, so a fold
/// over the returned vector associates floating-point operations
/// identically at every thread count.
pub fn map_blocks<T, F>(threads: usize, n: usize, block: usize, f: F) -> Vec<T>
where
    T: Send + Default,
    F: Fn(Range<usize>) -> T + Sync,
{
    let block = block.max(1);
    let nblocks = n.div_ceil(block);
    let mut out: Vec<T> = std::iter::repeat_with(T::default).take(nblocks).collect();
    for_each_chunk_mut(threads, &mut out, |_, first_block, slots| {
        for (off, slot) in slots.iter_mut().enumerate() {
            let b = first_block + off;
            let lo = b * block;
            let hi = n.min(lo + block);
            *slot = f(lo..hi);
        }
    });
    out
}

/// Thread-count-invariant parallel float sum: per-block partial sums via
/// [`map_blocks`], folded sequentially in block order.
pub fn sum_blocks<F>(threads: usize, n: usize, block: usize, f: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_blocks(threads, n, block, f).into_iter().sum()
}

/// Splits `data` into the fixed chunking of its index space and hands each
/// worker `(part_index, chunk_start, &mut chunk)` — safe disjoint mutation
/// with no interior mutability.
pub fn for_each_chunk_mut<T, F>(threads: usize, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let bounds: Vec<usize> = chunk_ranges(data.len(), threads)
        .into_iter()
        .map(|r| r.end)
        .collect();
    for_each_part_mut(data, &bounds, f);
}

/// Splits `data` at the given ascending end offsets (`bounds[last]` must
/// equal `data.len()`) and runs `f(part_index, part_start, &mut part)` for
/// every part on its own scoped worker. Used where parts must align to
/// caller-defined boundaries (e.g. CSR adjacency runs grouped by vertex
/// chunk).
pub fn for_each_part_mut<T, F>(data: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    if bounds.is_empty() {
        assert!(data.is_empty(), "no bounds over non-empty data");
        return;
    }
    assert_eq!(
        *bounds.last().unwrap(),
        data.len(),
        "bounds must end at data.len()"
    );
    if bounds.len() == 1 {
        f(0, 0, data);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0usize;
        for (i, &end) in bounds.iter().enumerate() {
            assert!(end >= start, "bounds must be ascending");
            let (part, tail) = rest.split_at_mut(end - start);
            rest = tail;
            let f = &f;
            scope.spawn(move || f(i, start, part));
            start = end;
        }
    });
}

/// A raw view of a mutable slice that lets multiple workers write
/// **disjoint** indices concurrently — the deterministic scatter primitive
/// (CSR placement writes each arc to a slot no other worker touches).
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY[4809a84b]: the slice is only accessed through `write`, whose
// contract requires callers to touch disjoint indices from different
// threads; with that upheld there is no aliased mutation, so sharing the
// view across threads is sound for any Send element type.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
// SAFETY[c0981114]: same reasoning — the view carries no thread-affine state.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for disjoint concurrent writes.
    pub fn new(data: &'a mut [T]) -> Self {
        Self {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Slot count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` into slot `idx`.
    ///
    /// # Safety
    ///
    /// While the view is shared across threads, no two `write` calls may
    /// target the same `idx`, and nothing may read the slice until all
    /// writers are joined. `idx` must be in bounds (checked in debug
    /// builds).
    // SAFETY[6c7b54b3]: callers uphold the bounds + disjointness contract
    // above.
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len, "SharedSlice write out of bounds");
        // SAFETY[a2cd072f]: `idx < len` per the caller contract
        // (debug-asserted), and the disjointness contract guarantees this
        // slot has no concurrent reader or writer.
        unsafe { self.ptr.add(idx).write(value) };
    }

    /// Reads slot `idx`.
    ///
    /// # Safety
    ///
    /// `idx` must be in bounds (checked in debug builds) and, while the
    /// view is shared across threads, slot `idx` must be accessed by only
    /// one worker — the column-ownership discipline of the CSR cursor
    /// passes.
    // SAFETY[950f03ee]: callers uphold the bounds + single-owner contract
    // above.
    pub unsafe fn read(&self, idx: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(idx < self.len, "SharedSlice read out of bounds");
        // SAFETY[38689708]: `idx < len` per the caller contract
        // (debug-asserted), and the single-owner contract rules out a
        // concurrent writer.
        unsafe { self.ptr.add(idx).read() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 1000] {
                let ranges = chunk_ranges(n, parts);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "gap at {n}/{parts}");
                    assert!(r.end > r.start, "empty chunk at {n}/{parts}");
                    expect = r.end;
                }
                assert_eq!(expect, n, "coverage at {n}/{parts}");
                assert!(ranges.len() <= parts.max(1));
                // Near-equal: lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_are_a_pure_function() {
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn run_chunks_visits_every_index_once() {
        for threads in [1usize, 2, 8] {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            run_chunks(threads, hits.len(), |_, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_chunks_preserves_part_order() {
        let parts = map_chunks(4, 100, |i, range| (i, range.start));
        assert_eq!(parts, vec![(0, 0), (1, 25), (2, 50), (3, 75)]);
        let empty: Vec<usize> = map_chunks(4, 0, |_, _| 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn block_sums_are_thread_count_invariant() {
        // An ill-conditioned sum whose value depends on association order:
        // identical partials at every thread count proves the fixed-block
        // association.
        let values: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 1e16 } else { 1.0 + i as f64 })
            .collect();
        let sums: Vec<f64> = [1usize, 2, 3, 8]
            .iter()
            .map(|&t| sum_blocks(t, values.len(), 128, |r| r.map(|i| values[i]).sum()))
            .collect();
        assert!(sums.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));
    }

    #[test]
    fn map_blocks_ignores_thread_count_for_boundaries() {
        let a = map_blocks(1, 1000, 64, |r| r.len());
        let b = map_blocks(7, 1000, 64, |r| r.len());
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<usize>(), 1000);
        assert_eq!(a.len(), 1000usize.div_ceil(64));
    }

    #[test]
    fn for_each_chunk_mut_writes_disjointly() {
        let mut data = vec![0usize; 103];
        for_each_chunk_mut(5, &mut data, |part, start, slice| {
            for (off, slot) in slice.iter_mut().enumerate() {
                *slot = part * 1000 + start + off;
            }
        });
        let bounds: Vec<usize> = chunk_ranges(103, 5).into_iter().map(|r| r.end).collect();
        let mut part = 0;
        for (i, &v) in data.iter().enumerate() {
            if i >= bounds[part] {
                part += 1;
            }
            assert_eq!(v, part * 1000 + i);
        }
    }

    #[test]
    fn for_each_part_mut_respects_custom_bounds() {
        let mut data = vec![0u32; 10];
        for_each_part_mut(&mut data, &[2, 2, 7, 10], |part, start, slice| {
            if part == 1 {
                assert!(slice.is_empty());
            }
            for (off, slot) in slice.iter_mut().enumerate() {
                *slot = (part * 100 + start + off) as u32;
            }
        });
        assert_eq!(data[0..2], [0, 1]);
        assert_eq!(data[2..7], [202, 203, 204, 205, 206]);
        assert_eq!(data[7..10], [307, 308, 309]);
    }

    #[test]
    #[should_panic(expected = "bounds must end at data.len()")]
    fn for_each_part_mut_rejects_short_bounds() {
        let mut data = vec![0u8; 4];
        for_each_part_mut(&mut data, &[2], |_, _, _| {});
    }

    #[test]
    fn shared_slice_scatter() {
        let mut data = vec![0u64; 1000];
        {
            let view = SharedSlice::new(&mut data);
            run_chunks(8, view.len(), |_, range| {
                for i in range {
                    // SAFETY: each index is visited by exactly one chunk.
                    unsafe { view.write(i, (i * 3) as u64) };
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == (i * 3) as u64));
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_chunks(4, 100, |_, range| {
                if range.contains(&60) {
                    panic!("worker failure");
                }
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn resolve_threads_clamps_and_defaults() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
