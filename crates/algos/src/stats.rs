//! STATS kernel: "counts the numbers of vertices and edges in the graph and
//! computes the mean local clustering coefficient" (paper §3.2).

use graphalytics_graph::metrics;
use graphalytics_graph::{CsrGraph, Vid};

/// Result of the STATS kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsResult {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of (logical) edges.
    pub num_edges: usize,
    /// Mean local clustering coefficient over all vertices (degree < 2
    /// vertices contribute 0).
    pub mean_local_cc: f64,
}

/// Reference STATS implementation.
pub fn stats(g: &CsrGraph) -> StatsResult {
    let n = g.num_vertices();
    let mut sum = 0.0;
    for v in 0..n as Vid {
        sum += metrics::local_clustering_coefficient(g, v);
    }
    StatsResult {
        num_vertices: n,
        num_edges: g.num_edges(),
        mean_local_cc: if n == 0 { 0.0 } else { sum / n as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    #[test]
    fn triangle_stats() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (1, 2),
            (0, 2),
        ]));
        let s = stats(&g);
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 3);
        assert!((s.mean_local_cc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![]));
        let s = stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.mean_local_cc, 0.0);
    }

    #[test]
    fn agrees_with_metrics_module() {
        let g = EdgeListGraph::undirected_from_edges(vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let csr = CsrGraph::from_edge_list(&g);
        let s = stats(&csr);
        let c = graphalytics_graph::metrics::characteristics(&g);
        assert!((s.mean_local_cc - c.avg_local_cc).abs() < 1e-12);
        assert_eq!(s.num_edges, c.num_edges);
    }
}
