//! PageRank — an iterative-convergence kernel used by the choke-point
//! ablations (paper §2.1 names PageRank as the canonical example of
//! "skewed execution intensity": later iterations do less work).

use graphalytics_graph::{CsrGraph, Vid};
use graphalytics_parallel as par;

/// Classic power-iteration PageRank. Dangling mass (vertices with out-degree
/// zero) is redistributed uniformly so scores sum to 1 each iteration.
/// Directed graphs propagate along out-edges; undirected graphs treat every
/// edge as bidirectional.
pub fn pagerank(g: &CsrGraph, iterations: usize, damping: f64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut ranks = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for v in 0..n as Vid {
            let out = g.degree(v);
            if out == 0 {
                dangling += ranks[v as usize];
                continue;
            }
            let share = ranks[v as usize] / out as f64;
            for &u in g.neighbors(v) {
                next[u as usize] += share;
            }
        }
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        for x in next.iter_mut() {
            *x = base + damping * *x;
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// Parallel pull-based PageRank on up to `threads` workers.
///
/// Where the sequential kernel *pushes* `ranks[v]/deg(v)` along out-edges
/// in ascending source order, this kernel *pulls*: each vertex sums the
/// contributions of its in-neighbors — which CSR stores in the same
/// ascending order — so every per-vertex accumulation performs the exact
/// same float additions in the exact same order. Combined with the
/// ascending dangling-mass sweep (precomputed index list), the output is
/// **bitwise identical to [`pagerank`] at every thread count**.
pub fn pagerank_parallel(
    g: &CsrGraph,
    iterations: usize,
    damping: f64,
    threads: usize,
) -> Vec<f64> {
    let threads = threads.max(1);
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut ranks = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    // Per-vertex contribution ranks[v]/deg(v); dangling vertices keep 0.0
    // (they have no out-arcs, so nothing ever pulls from them).
    let mut contrib = vec![0.0f64; n];
    // Dangling vertices in ascending order, fixed for the whole run.
    let dangling_ids: Vec<Vid> = (0..n as Vid).filter(|&v| g.degree(v) == 0).collect();
    for _ in 0..iterations {
        // The dangling sweep stays a single ascending accumulation — the
        // same association as the sequential kernel, and O(|dangling|).
        let mut dangling = 0.0f64;
        for &v in &dangling_ids {
            dangling += ranks[v as usize];
        }
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        let ranks_ref = &ranks;
        par::for_each_chunk_mut(threads, &mut contrib, |_, start, slice| {
            for (off, slot) in slice.iter_mut().enumerate() {
                let v = (start + off) as Vid;
                let deg = g.degree(v);
                *slot = if deg == 0 {
                    0.0
                } else {
                    ranks_ref[v as usize] / deg as f64
                };
            }
        });
        let contrib_ref = &contrib;
        par::for_each_chunk_mut(threads, &mut next, |_, start, slice| {
            for (off, slot) in slice.iter_mut().enumerate() {
                let v = (start + off) as Vid;
                let mut acc = 0.0f64;
                for &u in g.in_neighbors(v) {
                    acc += contrib_ref[u as usize];
                }
                *slot = base + damping * acc;
            }
        });
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// L1 distance between two rank vectors, used for convergence tests.
pub fn rank_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    #[test]
    fn ranks_sum_to_one() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::directed_from_edges(vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 2),
        ]));
        let r = pagerank(&g, 30, 0.85);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn symmetric_graph_gives_degree_proportional_ranks() {
        // Star: hub gets the most rank.
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (0, 2),
            (0, 3),
        ]));
        let r = pagerank(&g, 50, 0.85);
        assert!(r[0] > r[1]);
        assert!((r[1] - r[2]).abs() < 1e-12);
    }

    #[test]
    fn dangling_vertices_do_not_leak_mass() {
        // 0 -> 1, 1 is dangling.
        let g = CsrGraph::from_edge_list(&EdgeListGraph::directed_from_edges(vec![(0, 1)]));
        let r = pagerank(&g, 40, 0.85);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(r[1] > r[0], "sink accumulates rank");
    }

    #[test]
    fn converges() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
        ]));
        // Geometric convergence at rate `damping`: 0.85^60 ≈ 6e-5.
        let r60 = pagerank(&g, 60, 0.85);
        let r120 = pagerank(&g, 120, 0.85);
        assert!(rank_distance(&r60, &r120) < 1e-4);
    }

    #[test]
    fn parallel_is_bitwise_equal_to_sequential() {
        // Mixed shape: hub, cycle, dangling sink, isolated vertex.
        let mut edges: Vec<(u64, u64)> = (1..40).map(|i| (0, i)).collect();
        edges.extend([(1, 2), (2, 3), (3, 1), (5, 40)]);
        for directed in [false, true] {
            let el = EdgeListGraph::new(vec![99], edges.clone(), directed);
            let g = CsrGraph::from_edge_list(&el);
            let seq = pagerank(&g, 25, 0.85);
            for threads in [1usize, 2, 8] {
                let par = pagerank_parallel(&g, 25, 0.85, threads);
                assert_eq!(par.len(), seq.len());
                for (i, (a, b)) in par.iter().zip(&seq).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "vertex {i} differs (directed={directed} threads={threads}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![]));
        assert!(pagerank_parallel(&g, 10, 0.85, 4).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![]));
        assert!(pagerank(&g, 10, 0.85).is_empty());
    }

    #[test]
    fn zero_iterations_is_uniform() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![(0, 1)]));
        assert_eq!(pagerank(&g, 0, 0.85), vec![0.5, 0.5]);
    }
}
