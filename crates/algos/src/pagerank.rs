//! PageRank — an iterative-convergence kernel used by the choke-point
//! ablations (paper §2.1 names PageRank as the canonical example of
//! "skewed execution intensity": later iterations do less work).

use graphalytics_graph::{CsrGraph, Vid};

/// Classic power-iteration PageRank. Dangling mass (vertices with out-degree
/// zero) is redistributed uniformly so scores sum to 1 each iteration.
/// Directed graphs propagate along out-edges; undirected graphs treat every
/// edge as bidirectional.
pub fn pagerank(g: &CsrGraph, iterations: usize, damping: f64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f64;
    let mut ranks = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for v in 0..n as Vid {
            let out = g.degree(v);
            if out == 0 {
                dangling += ranks[v as usize];
                continue;
            }
            let share = ranks[v as usize] / out as f64;
            for &u in g.neighbors(v) {
                next[u as usize] += share;
            }
        }
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        for x in next.iter_mut() {
            *x = base + damping * *x;
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// L1 distance between two rank vectors, used for convergence tests.
pub fn rank_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    #[test]
    fn ranks_sum_to_one() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::directed_from_edges(vec![
            (0, 1),
            (1, 2),
            (2, 0),
            (0, 2),
        ]));
        let r = pagerank(&g, 30, 0.85);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn symmetric_graph_gives_degree_proportional_ranks() {
        // Star: hub gets the most rank.
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (0, 2),
            (0, 3),
        ]));
        let r = pagerank(&g, 50, 0.85);
        assert!(r[0] > r[1]);
        assert!((r[1] - r[2]).abs() < 1e-12);
    }

    #[test]
    fn dangling_vertices_do_not_leak_mass() {
        // 0 -> 1, 1 is dangling.
        let g = CsrGraph::from_edge_list(&EdgeListGraph::directed_from_edges(vec![(0, 1)]));
        let r = pagerank(&g, 40, 0.85);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(r[1] > r[0], "sink accumulates rank");
    }

    #[test]
    fn converges() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
        ]));
        // Geometric convergence at rate `damping`: 0.85^60 ≈ 6e-5.
        let r60 = pagerank(&g, 60, 0.85);
        let r120 = pagerank(&g, 120, 0.85);
        assert!(rank_distance(&r60, &r120) < 1e-4);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![]));
        assert!(pagerank(&g, 10, 0.85).is_empty());
    }

    #[test]
    fn zero_iterations_is_uniform() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![(0, 1)]));
        assert_eq!(pagerank(&g, 0, 0.85), vec![0.5, 0.5]);
    }
}
