//! CONN kernel: "determines for each vertex the connected component it
//! belongs to" (paper §3.2). Components are computed on the undirected view
//! (weak connectivity for directed graphs), matching the Graphalytics
//! specification.

use graphalytics_graph::{CsrGraph, Vid};
use graphalytics_parallel as par;

/// Component label per vertex: the *minimum internal id* in the component —
/// a canonical labeling, so two correct results compare equal directly.
/// Implemented with BFS sweeps (O(V + E)).
pub fn connected_components(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as Vid {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = start;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v).iter().chain(g.in_neighbors(v)) {
                if labels[u as usize] == u32::MAX {
                    labels[u as usize] = start;
                    queue.push_back(u);
                }
            }
        }
    }
    labels
}

/// Parallel CONN via frontier-free min-label propagation with pointer
/// jumping, on up to `threads` workers.
///
/// Each round is a Jacobi step — `next[v] = min(label[v], labels of v's
/// neighbors)` computed entirely from the previous round's array — followed
/// by pointer-jumping shortcut steps (`label[v] = label[label[v]]`), also
/// Jacobi. Nothing ever reads a value written in the same step, so the
/// result is a pure function of the graph at every thread count, and the
/// fixpoint is the *minimum internal id per component* — byte-identical to
/// [`connected_components`].
pub fn connected_components_parallel(g: &CsrGraph, threads: usize) -> Vec<u32> {
    let threads = threads.max(1);
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut next: Vec<u32> = vec![0; n];
    loop {
        // Propagate: adopt the smallest label in the closed neighborhood
        // (both directions, so directed graphs get weak connectivity).
        let changed = propagate_step(threads, g, &labels, &mut next);
        std::mem::swap(&mut labels, &mut next);
        // Shortcut: compress label chains until stable.
        loop {
            let jumped = jump_step(threads, &labels, &mut next);
            std::mem::swap(&mut labels, &mut next);
            if !jumped {
                break;
            }
        }
        if !changed {
            return labels;
        }
    }
}

fn propagate_step(threads: usize, g: &CsrGraph, labels: &[u32], next: &mut [u32]) -> bool {
    let changed = std::sync::atomic::AtomicBool::new(false);
    par::for_each_chunk_mut(threads, next, |_, start, slice| {
        let mut local = false;
        for (off, slot) in slice.iter_mut().enumerate() {
            let v = (start + off) as Vid;
            let mut best = labels[v as usize];
            for &u in g.neighbors(v) {
                best = best.min(labels[u as usize]);
            }
            if g.is_directed() {
                for &u in g.in_neighbors(v) {
                    best = best.min(labels[u as usize]);
                }
            }
            local |= best != labels[v as usize];
            *slot = best;
        }
        if local {
            changed.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    });
    changed.into_inner()
}

fn jump_step(threads: usize, labels: &[u32], next: &mut [u32]) -> bool {
    let changed = std::sync::atomic::AtomicBool::new(false);
    par::for_each_chunk_mut(threads, next, |_, start, slice| {
        let mut local = false;
        for (off, slot) in slice.iter_mut().enumerate() {
            let v = start + off;
            let jumped = labels[labels[v] as usize];
            local |= jumped != labels[v];
            *slot = jumped;
        }
        if local {
            changed.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    });
    changed.into_inner()
}

/// Disjoint-set forest (union by rank, path halving) used by the alternate
/// CONN implementation and by property tests as a cross-check.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Finds the set representative with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Unites the sets of `a` and `b`; returns true if they were disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }
}

/// CONN via union-find; same canonical labeling as
/// [`connected_components`].
pub fn connected_components_unionfind(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut uf = UnionFind::new(n);
    for v in 0..n as Vid {
        for &u in g.neighbors(v) {
            uf.union(v, u);
        }
    }
    // Canonicalize: min internal id per root.
    let mut min_of_root = vec![u32::MAX; n];
    for v in 0..n as u32 {
        let r = uf.find(v) as usize;
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..n as u32)
        .map(|v| min_of_root[uf.find(v) as usize])
        .collect()
}

/// Sizes of all components, descending — used for report summaries.
pub fn component_sizes(labels: &[u32]) -> Vec<usize> {
    let mut counts: rustc_hash::FxHashMap<u32, usize> = rustc_hash::FxHashMap::default();
    for &l in labels {
        *counts.entry(l).or_default() += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn csr(edges: Vec<(u64, u64)>) -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(edges))
    }

    #[test]
    fn two_components() {
        let g = csr(vec![(0, 1), (1, 2), (3, 4)]);
        assert_eq!(connected_components(&g), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn bfs_and_unionfind_agree() {
        let g = csr(vec![(0, 1), (2, 3), (3, 4), (5, 6), (6, 0)]);
        assert_eq!(connected_components(&g), connected_components_unionfind(&g));
    }

    #[test]
    fn directed_uses_weak_connectivity() {
        // 0 -> 1, 2 -> 1: weakly one component despite no directed path
        // between 0 and 2.
        let g = CsrGraph::from_edge_list(&EdgeListGraph::directed_from_edges(vec![(0, 1), (2, 1)]));
        assert_eq!(connected_components(&g), vec![0, 0, 0]);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let el = EdgeListGraph::new(vec![0, 1, 2], vec![(0, 1)], false);
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(connected_components(&g), vec![0, 0, 2]);
    }

    #[test]
    fn parallel_matches_sequential_bytewise() {
        // Long path (worst case for propagation rounds) + clusters +
        // isolated vertices.
        let mut edges: Vec<(u64, u64)> = (0..100).map(|i| (i, i + 1)).collect();
        edges.extend([(200, 201), (201, 202), (202, 200), (300, 301)]);
        let el = EdgeListGraph::new(vec![400, 401], edges, false);
        let g = CsrGraph::from_edge_list(&el);
        let seq = connected_components(&g);
        for threads in [1usize, 2, 8] {
            assert_eq!(
                connected_components_parallel(&g, threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_weak_connectivity_on_directed() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::directed_from_edges(vec![
            (0, 1),
            (2, 1),
            (3, 4),
        ]));
        assert_eq!(
            connected_components_parallel(&g, 4),
            connected_components(&g)
        );
    }

    #[test]
    fn parallel_handles_empty_graph() {
        let g = csr(vec![]);
        assert!(connected_components_parallel(&g, 4).is_empty());
    }

    #[test]
    fn component_sizes_sorted_descending() {
        let labels = vec![0, 0, 0, 3, 3, 5];
        assert_eq!(component_sizes(&labels), vec![3, 2, 1]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_ne!(uf.find(0), uf.find(2));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
    }
}
