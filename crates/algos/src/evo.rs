//! EVO kernel: graph evolution, "predicts the evolution of the graph
//! according to the 'forest fire' model" (paper §3.2, citing Leskovec,
//! Kleinberg & Faloutsos, KDD'05).
//!
//! For each new vertex, the model picks an ambassador among the existing
//! vertices, then "burns" outward: at each burned vertex it draws a
//! geometric number of not-yet-burned neighbors to burn next, and the new
//! vertex links to every burned vertex. The process densifies the graph
//! the way real networks densify over time.
//!
//! Determinism contract: every random decision comes from a substream keyed
//! by `(workload seed, new-vertex index)` and candidate neighbors are
//! considered in *sorted internal-id order*, so every platform produces the
//! exact same predicted edge set and the Output Validator compares EVO
//! results exactly.

use graphalytics_graph::rng::Xoshiro256;
use graphalytics_graph::{CsrGraph, Edge, Vid};
use rustc_hash::FxHashSet;

/// Predicts `new_vertices` additions under the forest-fire model.
///
/// Returns the new edges, sorted: each new vertex `k` gets the external id
/// `max_external_id + 1 + k` and links to the external ids of every vertex
/// its fire burned. Empty graphs yield no predictions (no ambassadors).
pub fn forest_fire(
    g: &CsrGraph,
    new_vertices: usize,
    p_forward: f64,
    max_burst: usize,
    seed: u64,
) -> Vec<Edge> {
    let n = g.num_vertices();
    if n == 0 || new_vertices == 0 {
        return Vec::new();
    }
    let base_id = (0..n as Vid)
        .map(|v| g.external_id(v))
        .max()
        .expect("non-empty graph")
        + 1;
    let mut edges = Vec::new();
    for k in 0..new_vertices as u64 {
        let mut rng = Xoshiro256::substream(seed ^ 0x464F_5245_5354, k);
        let ambassador = rng.next_bounded(n as u64) as Vid;
        let burned = burn(g, ambassador, p_forward, max_burst, &mut rng);
        let new_id = base_id + k;
        for b in burned {
            edges.push((g.external_id(b), new_id));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Runs one fire from `ambassador`; returns the burned vertex set in the
/// order burned (ambassador first). Shared by all platform implementations
/// *as a specification*: each platform re-implements this walk over its own
/// storage, and this function is the executable reference.
pub fn burn(
    g: &CsrGraph,
    ambassador: Vid,
    p_forward: f64,
    max_burst: usize,
    rng: &mut Xoshiro256,
) -> Vec<Vid> {
    let mut burned_set: FxHashSet<Vid> = FxHashSet::default();
    let mut burned = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    burned_set.insert(ambassador);
    burned.push(ambassador);
    queue.push_back(ambassador);
    while let Some(v) = queue.pop_front() {
        if burned.len() >= max_burst {
            break;
        }
        // Unburned neighbors in sorted order (CSR adjacency is sorted).
        let candidates: Vec<Vid> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|u| !burned_set.contains(u))
            .collect();
        if candidates.is_empty() {
            continue;
        }
        // Geometric(1 - p) - 1 links, as in the original model.
        let fanout = if p_forward >= 1.0 {
            candidates.len() as u64
        } else {
            rng.geometric(1.0 - p_forward) - 1
        };
        let fanout = (fanout as usize).min(candidates.len());
        if fanout == 0 {
            continue;
        }
        let picked = rng.sample_distinct(candidates.len(), fanout);
        for idx in picked {
            let u = candidates[idx];
            if burned.len() >= max_burst {
                break;
            }
            if burned_set.insert(u) {
                burned.push(u);
                queue.push_back(u);
            }
        }
    }
    burned
}

/// The forest-fire walk over plain sorted adjacency lists — the same
/// decision sequence as [`forest_fire`], for platforms whose storage is not
/// a [`CsrGraph`] (dataflow collections, MapReduce job outputs, record
/// stores). `adjacency[v]` must be sorted ascending; `external_ids[v]` maps
/// internal to external ids. Produces bit-identical output to
/// [`forest_fire`] on the same graph.
pub fn forest_fire_over_adjacency(
    adjacency: &[Vec<Vid>],
    external_ids: &[graphalytics_graph::VertexId],
    new_vertices: usize,
    p_forward: f64,
    max_burst: usize,
    seed: u64,
) -> Vec<Edge> {
    let n = adjacency.len();
    debug_assert_eq!(n, external_ids.len());
    if n == 0 || new_vertices == 0 {
        return Vec::new();
    }
    let base_id = external_ids.iter().copied().max().unwrap_or(0) + 1;
    let mut edges = Vec::new();
    for k in 0..new_vertices as u64 {
        let mut rng = Xoshiro256::substream(seed ^ 0x464F_5245_5354, k);
        let ambassador = rng.next_bounded(n as u64) as Vid;
        let mut burned_set: FxHashSet<Vid> = FxHashSet::default();
        let mut burned = vec![ambassador];
        burned_set.insert(ambassador);
        let mut queue = std::collections::VecDeque::from([ambassador]);
        while let Some(v) = queue.pop_front() {
            if burned.len() >= max_burst {
                break;
            }
            let candidates: Vec<Vid> = adjacency[v as usize]
                .iter()
                .copied()
                .filter(|u| !burned_set.contains(u))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let fanout = if p_forward >= 1.0 {
                candidates.len() as u64
            } else {
                rng.geometric(1.0 - p_forward) - 1
            };
            let fanout = (fanout as usize).min(candidates.len());
            if fanout == 0 {
                continue;
            }
            for idx in rng.sample_distinct(candidates.len(), fanout) {
                let u = candidates[idx];
                if burned.len() >= max_burst {
                    break;
                }
                if burned_set.insert(u) {
                    burned.push(u);
                    queue.push_back(u);
                }
            }
        }
        for b in burned {
            edges.push((external_ids[b as usize], base_id + k));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Densification check: mean number of edges per new vertex. Real networks
/// densify (mean > 1 for reasonable `p_forward`); used by statistical
/// validation of EVO outputs.
pub fn mean_new_degree(new_edges: &[Edge], new_vertices: usize) -> f64 {
    if new_vertices == 0 {
        return 0.0;
    }
    new_edges.len() as f64 / new_vertices as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn clique(n: u64) -> CsrGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(edges))
    }

    #[test]
    fn deterministic_given_seed() {
        let g = clique(20);
        let a = forest_fire(&g, 10, 0.4, 32, 7);
        let b = forest_fire(&g, 10, 0.4, 32, 7);
        assert_eq!(a, b);
        let c = forest_fire(&g, 10, 0.4, 32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn new_ids_are_fresh_and_edges_sorted() {
        let g = clique(10);
        let edges = forest_fire(&g, 5, 0.5, 16, 1);
        assert!(!edges.is_empty());
        for &(src, dst) in &edges {
            assert!(src < 10, "burned endpoint must be an existing vertex");
            assert!((10..15).contains(&dst), "new endpoint in fresh range");
        }
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn every_new_vertex_links_at_least_ambassador() {
        let g = clique(8);
        let edges = forest_fire(&g, 20, 0.0, 16, 3);
        // p=0: fires never spread, but the ambassador itself is burned.
        let mut new_ids: Vec<u64> = edges.iter().map(|&(_, d)| d).collect();
        new_ids.sort_unstable();
        new_ids.dedup();
        assert_eq!(new_ids.len(), 20);
        assert_eq!(edges.len(), 20);
    }

    #[test]
    fn max_burst_caps_fire_size() {
        let g = clique(30);
        let edges = forest_fire(&g, 1, 1.0, 5, 4);
        assert!(edges.len() <= 5, "burst must be capped: {}", edges.len());
    }

    #[test]
    fn higher_p_burns_more() {
        let g = clique(40);
        let low = forest_fire(&g, 30, 0.1, 64, 5).len();
        let high = forest_fire(&g, 30, 0.8, 64, 5).len();
        assert!(high > low, "low={low} high={high}");
    }

    #[test]
    fn empty_graph_and_zero_requests() {
        let empty = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![]));
        assert!(forest_fire(&empty, 5, 0.5, 16, 1).is_empty());
        let g = clique(5);
        assert!(forest_fire(&g, 0, 0.5, 16, 1).is_empty());
    }

    #[test]
    fn respects_sparse_external_ids() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (100, 200),
            (200, 350),
        ]));
        let edges = forest_fire(&g, 3, 0.5, 8, 9);
        for &(_, dst) in &edges {
            assert!(dst > 350, "fresh ids must exceed the max external id");
        }
    }

    #[test]
    fn mean_new_degree_math() {
        assert_eq!(mean_new_degree(&[(0, 5), (1, 5), (0, 6)], 2), 1.5);
        assert_eq!(mean_new_degree(&[], 0), 0.0);
    }
}
