//! SSSP kernel: single-source shortest paths over fixed-point edge weights
//! — the weighted companion of BFS in the LDBC Graphalytics workload.
//!
//! Weights are `u64` fixed-point values ([`graphalytics_graph::WEIGHT_SCALE`]
//! per unit), so path sums are exact integers: there is a unique shortest
//! distance per vertex and every correct relaxation order converges to it.
//! That is what makes the parallel kernel deterministic by construction.

use graphalytics_graph::{CsrGraph, VertexId, Vid, WEIGHT_SCALE};
use graphalytics_parallel as par;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distance of an unreachable vertex (including every vertex when the source
/// id is absent from the graph).
pub const INFINITY: u64 = u64::MAX;

/// Fixed-point shortest distance of every vertex from `source` (an external
/// id); [`INFINITY`] when unreachable. Directed graphs relax along out-edges.
///
/// Sequential Dijkstra with a lazy-deletion binary heap — the reference
/// oracle the platform kernels are validated against.
pub fn sssp(g: &CsrGraph, source: VertexId) -> Vec<u64> {
    let mut dist = vec![INFINITY; g.num_vertices()];
    let Some(src) = g.internal_id(source) else {
        return dist;
    };
    dist[src as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(u64, Vid)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((dv, v))) = heap.pop() {
        if dv > dist[v as usize] {
            continue; // Stale heap entry: v was settled at a shorter distance.
        }
        for (&u, &w) in g.neighbors(v).iter().zip(g.neighbor_weights(v)) {
            let nd = dv.saturating_add(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Bucket width for delta-stepping: one weight unit. Unit-weight graphs then
/// degenerate to level-synchronous BFS, and the LDBC datagen's (0, 1] weights
/// keep buckets small.
const DELTA: u64 = WEIGHT_SCALE;

/// Delta-stepping parallel SSSP (Meyer & Sanders) on up to `threads` workers.
///
/// Deterministic: distances only ever decrease through compare-exchange
/// minimum writes, and integer weights admit a unique shortest-distance
/// fixpoint, so the settled values — hence the output — are byte-identical
/// to [`sssp`] for any thread count. Only the relaxation *order* varies.
pub fn sssp_parallel(g: &CsrGraph, source: VertexId, threads: usize) -> Vec<u64> {
    let threads = threads.max(1);
    let n = g.num_vertices();
    let Some(src) = g.internal_id(source) else {
        return vec![INFINITY; n];
    };

    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INFINITY)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut buckets: Vec<Vec<Vid>> = vec![vec![src]];
    let mut i = 0usize;

    while i < buckets.len() {
        // A vertex can be re-relaxed into a later bucket after being queued;
        // settle the bucket by draining it until no member re-enters it.
        while !buckets[i].is_empty() {
            let frontier = std::mem::take(&mut buckets[i]);
            let parts: Vec<Vec<(Vid, u64)>> =
                par::map_chunks(threads, frontier.len(), |_, range| {
                    let mut relaxed = Vec::new();
                    for &v in &frontier[range] {
                        let dv = dist[v as usize].load(Ordering::Relaxed);
                        if dv == INFINITY || dv / DELTA != i as u64 {
                            continue; // Stale entry: v moved to another bucket.
                        }
                        for (&u, &w) in g.neighbors(v).iter().zip(g.neighbor_weights(v)) {
                            let nd = dv.saturating_add(w);
                            let mut cur = dist[u as usize].load(Ordering::Relaxed);
                            while nd < cur {
                                match dist[u as usize].compare_exchange_weak(
                                    cur,
                                    nd,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => {
                                        relaxed.push((u, nd));
                                        break;
                                    }
                                    Err(seen) => cur = seen,
                                }
                            }
                        }
                    }
                    relaxed
                });
            // Requeue each improved vertex once, into the bucket of its
            // *current* distance (it may have been lowered again since).
            let mut updates: Vec<Vid> = parts.into_iter().flatten().map(|(u, _)| u).collect();
            updates.sort_unstable();
            updates.dedup();
            for u in updates {
                let du = dist[u as usize].load(Ordering::Relaxed);
                let b = (du / DELTA) as usize;
                if b >= buckets.len() {
                    buckets.resize_with(b + 1, Vec::new);
                }
                if b >= i {
                    buckets[b].push(u);
                }
            }
        }
        i += 1;
    }

    dist.into_iter().map(AtomicU64::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn w(units: u64) -> u64 {
        units * WEIGHT_SCALE
    }

    fn weighted_csr(edges: Vec<(u64, u64, u64)>, directed: bool) -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeListGraph::new_weighted(Vec::new(), edges, directed))
    }

    #[test]
    fn path_distances_accumulate_weights() {
        let g = weighted_csr(vec![(0, 1, w(2)), (1, 2, w(3)), (2, 3, w(1))], false);
        assert_eq!(sssp(&g, 0), vec![0, w(2), w(5), w(6)]);
        assert_eq!(sssp(&g, 2), vec![w(5), w(3), 0, w(1)]);
    }

    #[test]
    fn shortcut_beats_fewer_hops() {
        // 0 -> 2 directly costs 10; the two-hop detour costs 3.
        let g = weighted_csr(vec![(0, 2, w(10)), (0, 1, w(1)), (1, 2, w(2))], false);
        assert_eq!(sssp(&g, 0)[2], w(3));
    }

    #[test]
    fn unreachable_vertices_get_infinity() {
        let g = weighted_csr(vec![(0, 1, w(1)), (2, 3, w(1))], false);
        assert_eq!(sssp(&g, 0), vec![0, w(1), INFINITY, INFINITY]);
    }

    #[test]
    fn missing_source_returns_all_infinite() {
        let g = weighted_csr(vec![(0, 1, w(1))], false);
        assert_eq!(sssp(&g, 99), vec![INFINITY, INFINITY]);
    }

    #[test]
    fn directed_respects_orientation() {
        let g = weighted_csr(vec![(0, 1, w(1)), (1, 2, w(1)), (2, 0, w(1))], true);
        assert_eq!(sssp(&g, 1), vec![w(2), 0, w(1)]);
    }

    #[test]
    fn unit_weights_reduce_to_scaled_bfs() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (1, 2),
            (2, 3),
        ]));
        assert_eq!(sssp(&g, 0), vec![0, w(1), w(2), w(3)]);
    }

    #[test]
    fn sub_unit_weights_split_buckets() {
        // Fractional weights force multiple relaxations inside one bucket.
        let g = weighted_csr(
            vec![
                (0, 1, 300_000),
                (1, 2, 300_000),
                (2, 3, 300_000),
                (0, 3, 2_000_000),
            ],
            false,
        );
        let d = sssp(&g, 0);
        assert_eq!(d[3], 900_000);
        for threads in [1usize, 2, 8] {
            assert_eq!(sssp_parallel(&g, 0, threads), d);
        }
    }

    /// Hubs, a weighted path tail, and a disconnected part — exercises bucket
    /// progression, stale entries, and INFINITY propagation.
    fn mixed_shape() -> CsrGraph {
        let mut edges: Vec<(u64, u64, u64)> = (1..60).map(|i| (0, i, w(i % 5 + 1))).collect();
        edges.extend((60..120).map(|i| (i, i + 1, 400_000 + 100_000 * (i % 7))));
        edges.push((30, 60, w(2)));
        edges.extend([(200, 201, w(1)), (201, 202, w(4))]);
        weighted_csr(edges, false)
    }

    #[test]
    fn parallel_matches_sequential_bytewise() {
        let g = mixed_shape();
        for source in [0u64, 90, 200, 999] {
            let seq = sssp(&g, source);
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    sssp_parallel(&g, source, threads),
                    seq,
                    "source={source} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_directed() {
        let g = weighted_csr(
            vec![
                (0, 1, w(3)),
                (1, 2, w(1)),
                (2, 0, w(2)),
                (0, 3, 500_000),
                (3, 4, w(7)),
                (5, 0, w(1)),
            ],
            true,
        );
        for source in [0u64, 5] {
            for threads in [1usize, 4] {
                assert_eq!(sssp_parallel(&g, source, threads), sssp(&g, source));
            }
        }
    }

    #[test]
    fn parallel_handles_empty_graph() {
        let g = weighted_csr(vec![], false);
        assert!(sssp_parallel(&g, 0, 4).is_empty());
    }

    #[test]
    fn sparse_external_ids() {
        let g = weighted_csr(vec![(100, 200, w(2)), (200, 300, w(3))], false);
        // Internal order is [100, 200, 300].
        assert_eq!(sssp(&g, 200), vec![w(2), 0, w(3)]);
    }
}
