//! BFS kernel: level-synchronous breadth-first search "starting from a seed
//! vertex, visiting first all the neighbors of a vertex before moving to the
//! neighbors of the neighbors" (paper §3.2).

use graphalytics_graph::{CsrGraph, VertexId, Vid};
use std::collections::VecDeque;

/// Depth of every vertex from `source` (an external id); `-1` when
/// unreachable (including when `source` itself is absent from the graph).
/// Directed graphs are traversed along out-edges.
pub fn bfs(g: &CsrGraph, source: VertexId) -> Vec<i64> {
    let mut depths = vec![-1i64; g.num_vertices()];
    let Some(src) = g.internal_id(source) else {
        return depths;
    };
    let mut queue = VecDeque::new();
    depths[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let next = depths[v as usize] + 1;
        for &u in g.neighbors(v) {
            if depths[u as usize] < 0 {
                depths[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    depths
}

/// Number of edges traversed by a BFS from `source`: the sum of the degrees
/// of all reached vertices — the Graph500 convention used for the TEPS
/// metric of Figure 5.
pub fn traversed_edges(g: &CsrGraph, depths: &[i64]) -> usize {
    let mut sum = 0usize;
    for v in 0..g.num_vertices() as Vid {
        if depths[v as usize] >= 0 {
            sum += g.degree(v);
        }
    }
    if g.is_directed() {
        sum
    } else {
        sum / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn csr(edges: Vec<(u64, u64)>, directed: bool) -> CsrGraph {
        CsrGraph::from_edge_list(&if directed {
            EdgeListGraph::directed_from_edges(edges)
        } else {
            EdgeListGraph::undirected_from_edges(edges)
        })
    }

    #[test]
    fn path_depths() {
        let g = csr(vec![(0, 1), (1, 2), (2, 3)], false);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn unreachable_vertices_get_minus_one() {
        let g = csr(vec![(0, 1), (2, 3)], false);
        assert_eq!(bfs(&g, 0), vec![0, 1, -1, -1]);
    }

    #[test]
    fn missing_source_returns_all_unreachable() {
        let g = csr(vec![(0, 1)], false);
        assert_eq!(bfs(&g, 99), vec![-1, -1]);
    }

    #[test]
    fn directed_respects_orientation() {
        let g = csr(vec![(0, 1), (1, 2), (2, 0)], true);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2]);
        // From 1: 1 -> 2 -> 0.
        assert_eq!(bfs(&g, 1), vec![2, 0, 1]);
    }

    #[test]
    fn depths_are_shortest_paths() {
        // Diamond: two paths of length 2 from 0 to 3, plus a long detour.
        let g = csr(
            vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 0)],
            false,
        );
        let d = bfs(&g, 0);
        assert_eq!(d[3], 2);
        assert_eq!(d[5], 1); // Via the 5-0 edge.
        assert_eq!(d[4], 2);
    }

    #[test]
    fn traversed_edges_counts_reached_component_only() {
        let g = csr(vec![(0, 1), (1, 2), (3, 4)], false);
        let d = bfs(&g, 0);
        assert_eq!(traversed_edges(&g, &d), 2);
        let g500 = csr(vec![(0, 1), (1, 2), (0, 2)], false);
        assert_eq!(traversed_edges(&g500, &bfs(&g500, 0)), 3);
    }

    #[test]
    fn sparse_external_ids() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (100, 200),
            (200, 300),
        ]));
        let d = bfs(&g, 200);
        // Internal order is [100, 200, 300].
        assert_eq!(d, vec![1, 0, 1]);
    }
}
