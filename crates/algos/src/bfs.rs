//! BFS kernel: level-synchronous breadth-first search "starting from a seed
//! vertex, visiting first all the neighbors of a vertex before moving to the
//! neighbors of the neighbors" (paper §3.2).

use graphalytics_graph::{CsrGraph, VertexId, Vid};
use graphalytics_parallel as par;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};

/// Depth of every vertex from `source` (an external id); `-1` when
/// unreachable (including when `source` itself is absent from the graph).
/// Directed graphs are traversed along out-edges.
pub fn bfs(g: &CsrGraph, source: VertexId) -> Vec<i64> {
    let mut depths = vec![-1i64; g.num_vertices()];
    let Some(src) = g.internal_id(source) else {
        return depths;
    };
    let mut queue = VecDeque::new();
    depths[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let next = depths[v as usize] + 1;
        for &u in g.neighbors(v) {
            if depths[u as usize] < 0 {
                depths[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    depths
}

/// Growth factor deciding the top-down → bottom-up switch (Beamer et al.,
/// GAP): go bottom-up once the frontier's out-arcs exceed `1/ALPHA` of the
/// unexplored arcs.
const ALPHA: usize = 15;
/// Shrink factor for the bottom-up → top-down switch: return to top-down
/// once the frontier falls below `n / BETA` vertices.
const BETA: usize = 18;

/// Direction-optimizing parallel BFS (push/pull, Beamer et al.) on up to
/// `threads` workers.
///
/// Deterministic: level-synchronous rounds assign every vertex the same
/// depth as [`bfs`] no matter the thread count — top-down claims race only
/// through compare-exchange writes of the *same* level value, and the
/// direction heuristic depends only on deterministic quantities (frontier
/// arc counts). Output is byte-identical to the sequential kernel.
pub fn bfs_parallel(g: &CsrGraph, source: VertexId, threads: usize) -> Vec<i64> {
    let threads = threads.max(1);
    let n = g.num_vertices();
    let Some(src) = g.internal_id(source) else {
        return vec![-1; n];
    };

    let depths: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    depths[src as usize].store(0, Ordering::Relaxed);
    let mut frontier: Vec<Vid> = vec![src];
    let mut scout_arcs = g.degree(src);
    let mut edges_to_check = g.num_arcs();
    let mut level = 0i64;

    while !frontier.is_empty() {
        let next_level = level + 1;
        let bottom_up = scout_arcs * ALPHA > edges_to_check || frontier.len() * BETA > n;
        edges_to_check = edges_to_check.saturating_sub(scout_arcs);

        let parts: Vec<(Vec<Vid>, usize)> = if bottom_up {
            // Pull: every unvisited vertex scans its in-neighbors for a
            // frontier member; only the owning worker writes its depth.
            par::map_chunks(threads, n, |_, range| {
                let mut local = Vec::new();
                let mut arcs = 0usize;
                for v in range {
                    if depths[v].load(Ordering::Relaxed) >= 0 {
                        continue;
                    }
                    let hit = g
                        .in_neighbors(v as Vid)
                        .iter()
                        .any(|&u| depths[u as usize].load(Ordering::Relaxed) == level);
                    if hit {
                        depths[v].store(next_level, Ordering::Relaxed);
                        local.push(v as Vid);
                        arcs += g.degree(v as Vid);
                    }
                }
                (local, arcs)
            })
        } else {
            // Push: frontier chunks claim unvisited out-neighbors. The
            // compare-exchange winner is scheduling-dependent; the stored
            // value is not.
            let frontier = &frontier;
            par::map_chunks(threads, frontier.len(), |_, range| {
                let mut local = Vec::new();
                let mut arcs = 0usize;
                for &v in &frontier[range] {
                    for &u in g.neighbors(v) {
                        if depths[u as usize]
                            .compare_exchange(-1, next_level, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            local.push(u);
                            arcs += g.degree(u);
                        }
                    }
                }
                (local, arcs)
            })
        };

        frontier = Vec::with_capacity(parts.iter().map(|(p, _)| p.len()).sum());
        scout_arcs = 0;
        for (part, arcs) in parts {
            frontier.extend(part);
            scout_arcs += arcs;
        }
        level = next_level;
    }

    depths.into_iter().map(AtomicI64::into_inner).collect()
}

/// Number of edges traversed by a BFS from `source`: the sum of the degrees
/// of all reached vertices — the Graph500 convention used for the TEPS
/// metric of Figure 5.
pub fn traversed_edges(g: &CsrGraph, depths: &[i64]) -> usize {
    let mut sum = 0usize;
    for v in 0..g.num_vertices() as Vid {
        if depths[v as usize] >= 0 {
            sum += g.degree(v);
        }
    }
    if g.is_directed() {
        sum
    } else {
        sum / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn csr(edges: Vec<(u64, u64)>, directed: bool) -> CsrGraph {
        CsrGraph::from_edge_list(&if directed {
            EdgeListGraph::directed_from_edges(edges)
        } else {
            EdgeListGraph::undirected_from_edges(edges)
        })
    }

    #[test]
    fn path_depths() {
        let g = csr(vec![(0, 1), (1, 2), (2, 3)], false);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn unreachable_vertices_get_minus_one() {
        let g = csr(vec![(0, 1), (2, 3)], false);
        assert_eq!(bfs(&g, 0), vec![0, 1, -1, -1]);
    }

    #[test]
    fn missing_source_returns_all_unreachable() {
        let g = csr(vec![(0, 1)], false);
        assert_eq!(bfs(&g, 99), vec![-1, -1]);
    }

    #[test]
    fn directed_respects_orientation() {
        let g = csr(vec![(0, 1), (1, 2), (2, 0)], true);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2]);
        // From 1: 1 -> 2 -> 0.
        assert_eq!(bfs(&g, 1), vec![2, 0, 1]);
    }

    #[test]
    fn depths_are_shortest_paths() {
        // Diamond: two paths of length 2 from 0 to 3, plus a long detour.
        let g = csr(
            vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 0)],
            false,
        );
        let d = bfs(&g, 0);
        assert_eq!(d[3], 2);
        assert_eq!(d[5], 1); // Via the 5-0 edge.
        assert_eq!(d[4], 2);
    }

    #[test]
    fn traversed_edges_counts_reached_component_only() {
        let g = csr(vec![(0, 1), (1, 2), (3, 4)], false);
        let d = bfs(&g, 0);
        assert_eq!(traversed_edges(&g, &d), 2);
        let g500 = csr(vec![(0, 1), (1, 2), (0, 2)], false);
        assert_eq!(traversed_edges(&g500, &bfs(&g500, 0)), 3);
    }

    /// A graph with hubs, a long path tail, and a disconnected part —
    /// exercises both traversal directions and the heuristic switch.
    fn mixed_shape() -> CsrGraph {
        let mut edges: Vec<(u64, u64)> = (1..80).map(|i| (0, i)).collect();
        edges.extend((80..140).map(|i| (i, i + 1)));
        edges.push((50, 80));
        edges.extend([(200, 201), (201, 202)]);
        csr(edges, false)
    }

    #[test]
    fn parallel_matches_sequential_bytewise() {
        let g = mixed_shape();
        for source in [0u64, 100, 200, 999] {
            let seq = bfs(&g, source);
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    bfs_parallel(&g, source, threads),
                    seq,
                    "source={source} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_directed() {
        let g = csr(vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (5, 0)], true);
        for source in [0u64, 5] {
            for threads in [1usize, 4] {
                assert_eq!(bfs_parallel(&g, source, threads), bfs(&g, source));
            }
        }
    }

    #[test]
    fn parallel_handles_empty_graph() {
        let g = csr(vec![], false);
        assert!(bfs_parallel(&g, 0, 4).is_empty());
    }

    #[test]
    fn sparse_external_ids() {
        let g = CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (100, 200),
            (200, 300),
        ]));
        let d = bfs(&g, 200);
        // Internal order is [100, 200, 300].
        assert_eq!(d, vec![1, 0, 1]);
    }
}
