//! CD kernel: community detection, "detects groups of nodes that are
//! connected to each other stronger than they are connected to the rest of
//! the graph" (paper §3.2, citing Leung et al., "Towards real-time
//! community detection in large networks", Phys. Rev. E 79, 2009).
//!
//! We implement the synchronous, *deterministic* adaptation of Leung's
//! label propagation with hop attenuation and degree-weighted node
//! preference:
//!
//! * every vertex starts with its own label and score 1;
//! * each round, every vertex evaluates `W(L) = Σ_{u ∈ N(v), label(u)=L}
//!   score(u) · deg(u)^m` and adopts the arg-max label (smallest label wins
//!   ties — this is the determinism rule that lets the Output Validator
//!   compare platforms exactly). The per-label contributions are summed in
//!   ascending order (a canonical summation order), so the floating-point
//!   result — and therefore the arg-max — is bit-identical no matter in
//!   which order a platform's messages arrive;
//! * the adopted label's score at `v` becomes `(1 − δ) · max_{u: label(u)=L*}
//!   score(u)`, which attenuates labels as they travel (bounding community
//!   diameter).
//!
//! Because updates are synchronous and tie-breaks are total, every platform
//! produces bit-identical labels.

use graphalytics_graph::{CsrGraph, Vid};
use rustc_hash::FxHashMap;

/// Community label per vertex after `iterations` synchronous rounds.
pub fn community_detection(
    g: &CsrGraph,
    iterations: usize,
    hop_attenuation: f64,
    degree_exponent: f64,
) -> Vec<u32> {
    let n = g.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut scores: Vec<f64> = vec![1.0; n];
    let mut next_labels = labels.clone();
    let mut next_scores = scores.clone();
    let mut weight: FxHashMap<u32, (Vec<f64>, f64)> = FxHashMap::default();
    for _ in 0..iterations {
        let mut changed = false;
        for v in 0..n as Vid {
            let neigh = g.neighbors(v);
            if neigh.is_empty() {
                next_labels[v as usize] = labels[v as usize];
                next_scores[v as usize] = scores[v as usize];
                continue;
            }
            weight.clear();
            for &u in neigh {
                let lu = labels[u as usize];
                let influence = scores[u as usize] * (g.degree(u) as f64).powf(degree_exponent);
                let entry = weight.entry(lu).or_insert((Vec::new(), 0.0));
                entry.0.push(influence);
                entry.1 = entry.1.max(scores[u as usize]);
            }
            let (best_label, _best_weight, best_score) = argmax_label(&mut weight);
            if best_label != labels[v as usize] {
                changed = true;
                next_labels[v as usize] = best_label;
                next_scores[v as usize] = best_score * (1.0 - hop_attenuation);
            } else {
                next_labels[v as usize] = best_label;
                next_scores[v as usize] = best_score.max(scores[v as usize]);
            }
        }
        std::mem::swap(&mut labels, &mut next_labels);
        std::mem::swap(&mut scores, &mut next_scores);
        if !changed {
            break;
        }
    }
    labels
}

/// The CD arg-max step, shared by every platform implementation: per-label
/// contributions are sorted ascending and summed (canonical order ⇒ the
/// f64 total is platform-independent), then the heaviest label wins with
/// ties broken toward the smallest label. Returns
/// `(label, weight, max_score)`.
pub fn argmax_label(weight: &mut FxHashMap<u32, (Vec<f64>, f64)>) -> (u32, f64, f64) {
    let (mut best_label, mut best_weight, mut best_score) = (u32::MAX, f64::MIN, 0.0);
    // lint:allow(determinism-hash-iter): order-insensitive — contributions are sorted before summing and ties break by total order on the label, so every iteration order yields the same argmax
    for (&l, (contributions, max_score)) in weight.iter_mut() {
        contributions.sort_by(|a, b| a.total_cmp(b));
        let w: f64 = contributions.iter().sum();
        if w > best_weight || (w == best_weight && l < best_label) {
            best_label = l;
            best_weight = w;
            best_score = *max_score;
        }
    }
    (best_label, best_weight, best_score)
}

/// Modularity of a labeling (Newman): used to *validate* that CD found
/// meaningful structure rather than to compare platforms.
pub fn modularity(g: &CsrGraph, labels: &[u32]) -> f64 {
    assert!(!g.is_directed(), "modularity defined on undirected graphs");
    let m2 = g.num_arcs() as f64; // 2m.
    if m2 == 0.0 {
        return 0.0;
    }
    // Intra-community edge fraction minus expected fraction. A BTreeMap
    // keeps the per-label summation in ascending label order, so the f64
    // total never depends on hash iteration order.
    let mut intra = 0.0f64;
    let mut degree_sum: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    for v in 0..g.num_vertices() as Vid {
        *degree_sum.entry(labels[v as usize]).or_default() += g.degree(v) as f64;
        for &u in g.neighbors(v) {
            if labels[v as usize] == labels[u as usize] {
                intra += 1.0; // Counts each intra edge twice, matching 2m.
            }
        }
    }
    let expected: f64 = degree_sum.values().map(|&d| (d / m2) * (d / m2)).sum();
    intra / m2 - expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn csr(edges: Vec<(u64, u64)>) -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(edges))
    }

    fn two_cliques_bridge() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u64, 6] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((5, 6));
        csr(edges)
    }

    #[test]
    fn detects_two_cliques() {
        let g = two_cliques_bridge();
        let labels = community_detection(&g, 10, 0.05, 0.1);
        // All of clique A share a label; all of clique B share a label;
        // the two labels differ.
        assert!(labels[..6].iter().all(|&l| l == labels[0]), "{labels:?}");
        assert!(labels[6..].iter().all(|&l| l == labels[6]), "{labels:?}");
        assert_ne!(labels[0], labels[6]);
    }

    #[test]
    fn modularity_of_good_split_is_high() {
        let g = two_cliques_bridge();
        let labels = community_detection(&g, 10, 0.05, 0.1);
        let q_good = modularity(&g, &labels);
        let all_same = vec![0u32; g.num_vertices()];
        let q_trivial = modularity(&g, &all_same);
        assert!(q_good > 0.3, "q={q_good}");
        assert!(q_good > q_trivial);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = two_cliques_bridge();
        let a = community_detection(&g, 10, 0.05, 0.1);
        let b = community_detection(&g, 10, 0.05, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_iterations_returns_identity() {
        let g = csr(vec![(0, 1), (1, 2)]);
        assert_eq!(community_detection(&g, 0, 0.05, 0.1), vec![0, 1, 2]);
    }

    #[test]
    fn isolated_vertices_keep_their_label() {
        let el = EdgeListGraph::new(vec![0, 1, 2, 9], vec![(0, 1)], false);
        let g = CsrGraph::from_edge_list(&el);
        let labels = community_detection(&g, 5, 0.05, 0.1);
        // Vertex 2 (internal) and 9 (internal 3) have no neighbors.
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 3);
    }

    #[test]
    fn attenuation_bounds_community_spread() {
        // A long path: with strong attenuation labels cannot conquer the
        // whole path, so multiple communities must survive.
        let edges: Vec<(u64, u64)> = (0..60).map(|i| (i, i + 1)).collect();
        let g = csr(edges);
        let labels = community_detection(&g, 30, 0.5, 0.1);
        let mut distinct = labels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() > 2, "labels collapsed: {}", distinct.len());
    }

    #[test]
    fn modularity_empty_graph_is_zero() {
        let g = csr(vec![]);
        assert_eq!(modularity(&g, &[]), 0.0);
    }
}
