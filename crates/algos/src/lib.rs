//! # graphalytics-algos
//!
//! Reference ("oracle") implementations of the Graphalytics workload (paper
//! §3.2) plus the shared algorithm/output contract every platform
//! implements:
//!
//! * **STATS** — vertex/edge counts and mean local clustering coefficient;
//! * **BFS** — breadth-first search from a seed vertex;
//! * **CONN** — connected components;
//! * **CD** — community detection (Leung et al. label propagation with hop
//!   attenuation, deterministic variant);
//! * **EVO** — forest-fire graph evolution (Leskovec et al.);
//! * **PageRank** — the classic iterative ranking (an extension beyond the
//!   paper's five, used by the choke-point benchmarks);
//! * **SSSP** — single-source shortest paths over fixed-point edge weights
//!   (from LDBC Graphalytics, the paper's successor benchmark);
//! * **LCC** — per-vertex local clustering coefficient (ditto).
//!
//! The [`Algorithm`] enum is the workload description the harness hands to
//! a platform; [`Output`] is what the platform must return, in *internal
//! vertex-id order* of the canonical [`CsrGraph`]. The [`Output::equivalent`]
//! relation is what the Output Validator uses: exact for BFS/CONN/EVO
//! (CONN up to label renaming), tolerance-based for floating-point outputs.

pub mod bfs;
pub mod cd;
pub mod conn;
pub mod evo;
pub mod lcc;
pub mod pagerank;
pub mod sssp;
pub mod stats;

use graphalytics_graph::{CsrGraph, Edge, VertexId};

pub use sssp::INFINITY;
pub use stats::StatsResult;

/// A workload algorithm with its parameters (paper §3.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// General statistics: |V|, |E|, mean local clustering coefficient.
    Stats,
    /// Breadth-first search from `source` (an external vertex id).
    Bfs {
        /// External id of the seed vertex.
        source: VertexId,
    },
    /// Connected components (on the undirected view of the graph).
    Conn,
    /// Community detection via label propagation with hop attenuation
    /// (deterministic adaptation of Leung et al., Phys. Rev. E 79).
    Cd {
        /// Synchronous propagation rounds.
        iterations: usize,
        /// Hop attenuation δ: score multiplier `(1 - δ)` on label adoption.
        hop_attenuation: f64,
        /// Degree-preference exponent `m` weighting neighbor influence.
        degree_exponent: f64,
    },
    /// Graph evolution via the forest-fire model (Leskovec et al., KDD'05).
    Evo {
        /// Number of new vertices to add.
        new_vertices: usize,
        /// Forward-burning probability.
        p_forward: f64,
        /// Maximum vertices burned per new vertex (keeps fires bounded).
        max_burst: usize,
        /// Model seed (EVO is randomized; the seed is part of the workload
        /// so all platforms produce identical output).
        seed: u64,
    },
    /// PageRank with `iterations` power-iteration steps.
    PageRank {
        /// Power-iteration count.
        iterations: usize,
        /// Damping factor (0.85 classically).
        damping: f64,
    },
    /// Single-source shortest paths over the fixed-point edge weights
    /// (LDBC Graphalytics SSSP; delta-stepping in the parallel reference).
    Sssp {
        /// External id of the source vertex.
        source: VertexId,
    },
    /// Local clustering coefficient per vertex (LDBC Graphalytics LCC).
    Lcc,
}

impl Algorithm {
    /// Workload acronym as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Stats => "STATS",
            Algorithm::Bfs { .. } => "BFS",
            Algorithm::Conn => "CONN",
            Algorithm::Cd { .. } => "CD",
            Algorithm::Evo { .. } => "EVO",
            Algorithm::PageRank { .. } => "PR",
            Algorithm::Sssp { .. } => "SSSP",
            Algorithm::Lcc => "LCC",
        }
    }

    /// Default BFS workload (seed vertex 0).
    pub fn default_bfs() -> Self {
        Algorithm::Bfs { source: 0 }
    }

    /// Default CD parameters (δ = 0.05, m = 0.1, 10 rounds).
    pub fn default_cd() -> Self {
        Algorithm::Cd {
            iterations: 10,
            hop_attenuation: 0.05,
            degree_exponent: 0.1,
        }
    }

    /// Default EVO parameters (forward probability 0.3, capped fires).
    pub fn default_evo() -> Self {
        Algorithm::Evo {
            new_vertices: 64,
            p_forward: 0.3,
            max_burst: 64,
            seed: 0x45564F,
        }
    }

    /// Default PageRank parameters.
    pub fn default_pagerank() -> Self {
        Algorithm::PageRank {
            iterations: 20,
            damping: 0.85,
        }
    }

    /// Default SSSP workload (source vertex 0).
    pub fn default_sssp() -> Self {
        Algorithm::Sssp { source: 0 }
    }

    /// The paper's five-kernel workload with default parameters.
    pub fn paper_workload() -> Vec<Algorithm> {
        vec![
            Algorithm::Stats,
            Algorithm::default_bfs(),
            Algorithm::Conn,
            Algorithm::default_cd(),
            Algorithm::default_evo(),
        ]
    }

    /// The LDBC Graphalytics successor workload: the paper's five kernels
    /// plus SSSP and LCC (arXiv 2011.15028).
    pub fn ldbc_workload() -> Vec<Algorithm> {
        let mut w = Self::paper_workload();
        w.push(Algorithm::default_sssp());
        w.push(Algorithm::Lcc);
        w
    }
}

/// The result of running an algorithm. Per-vertex vectors are indexed by
/// the canonical graph's *internal* vertex ids.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// STATS result.
    Stats(StatsResult),
    /// BFS depth per vertex; `-1` for unreachable vertices.
    Depths(Vec<i64>),
    /// Component label per vertex (any labeling; compared up to renaming).
    Components(Vec<u32>),
    /// Community label per vertex (deterministic spec ⇒ exact comparison).
    Communities(Vec<u32>),
    /// EVO: the predicted new edges, sorted.
    Evolution(Vec<Edge>),
    /// PageRank score per vertex.
    Ranks(Vec<f64>),
    /// SSSP fixed-point distance per vertex; [`INFINITY`] when unreachable.
    /// Integer-scaled weights make path sums exact, so comparison is exact.
    Distances(Vec<u64>),
    /// Local clustering coefficient per vertex, in `[0, 1]`.
    LocalClustering(Vec<f64>),
}

impl Output {
    /// Validator equivalence: exact where the spec is deterministic,
    /// partition-equality for component labelings, and small-tolerance
    /// comparison for floating-point outputs.
    pub fn equivalent(&self, other: &Output) -> bool {
        match (self, other) {
            (Output::Stats(a), Output::Stats(b)) => {
                a.num_vertices == b.num_vertices
                    && a.num_edges == b.num_edges
                    && (a.mean_local_cc - b.mean_local_cc).abs() < 1e-9
            }
            (Output::Depths(a), Output::Depths(b)) => a == b,
            (Output::Components(a), Output::Components(b)) => partitions_equal(a, b),
            (Output::Communities(a), Output::Communities(b)) => a == b,
            (Output::Evolution(a), Output::Evolution(b)) => a == b,
            (Output::Ranks(a), Output::Ranks(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| (x - y).abs() <= 1e-9 + 1e-6 * x.abs().max(y.abs()))
            }
            (Output::Distances(a), Output::Distances(b)) => a == b,
            (Output::LocalClustering(a), Output::LocalClustering(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| (x - y).abs() <= 1e-9 + 1e-6 * x.abs().max(y.abs()))
            }
            _ => false,
        }
    }

    /// Short content summary for reports.
    pub fn summary(&self) -> String {
        match self {
            Output::Stats(s) => format!(
                "|V|={} |E|={} meanLCC={:.4}",
                s.num_vertices, s.num_edges, s.mean_local_cc
            ),
            Output::Depths(d) => {
                let reached = d.iter().filter(|&&x| x >= 0).count();
                let max = d.iter().copied().max().unwrap_or(-1);
                format!("reached={reached} maxDepth={max}")
            }
            Output::Components(c) => {
                format!("components={}", distinct_count(c))
            }
            Output::Communities(c) => {
                format!("communities={}", distinct_count(c))
            }
            Output::Evolution(e) => format!("newEdges={}", e.len()),
            Output::Ranks(r) => {
                let sum: f64 = r.iter().sum();
                format!("vertices={} sum={sum:.4}", r.len())
            }
            Output::Distances(d) => {
                let reached = d.iter().filter(|&&x| x != INFINITY).count();
                let max = d.iter().copied().filter(|&x| x != INFINITY).max();
                match max {
                    Some(m) => format!("reached={reached} maxDist={m}"),
                    None => format!("reached={reached}"),
                }
            }
            Output::LocalClustering(c) => {
                let n = c.len();
                let mean = if n == 0 {
                    0.0
                } else {
                    c.iter().sum::<f64>() / n as f64
                };
                format!("vertices={n} meanLCC={mean:.4}")
            }
        }
    }
}

fn distinct_count(labels: &[u32]) -> usize {
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// True when two labelings induce the same partition of `0..n`.
pub fn partitions_equal(a: &[u32], b: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // Map each a-label to the first b-label seen with it, and vice versa;
    // a partition mismatch shows up as a conflicting mapping.
    let mut a2b: rustc_hash::FxHashMap<u32, u32> = rustc_hash::FxHashMap::default();
    let mut b2a: rustc_hash::FxHashMap<u32, u32> = rustc_hash::FxHashMap::default();
    for (&la, &lb) in a.iter().zip(b) {
        match a2b.entry(la) {
            std::collections::hash_map::Entry::Occupied(e) if *e.get() != lb => return false,
            std::collections::hash_map::Entry::Occupied(_) => {}
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(lb);
            }
        }
        match b2a.entry(lb) {
            std::collections::hash_map::Entry::Occupied(e) if *e.get() != la => return false,
            std::collections::hash_map::Entry::Occupied(_) => {}
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(la);
            }
        }
    }
    true
}

/// Runs the reference implementation of `alg` on `g` using up to
/// `threads` workers for the parallel kernels (BFS, CONN, PageRank).
///
/// The parallel kernels are built on the deterministic runtime
/// (`graphalytics-parallel`): their outputs are byte-identical at every
/// thread count and bitwise equal to the sequential kernels [`reference`]
/// uses, so either entry point is a valid oracle. STATS, CD, and EVO run
/// sequentially at any thread count.
pub fn reference_with_threads(g: &CsrGraph, alg: &Algorithm, threads: usize) -> Output {
    match alg {
        Algorithm::Bfs { source } => Output::Depths(bfs::bfs_parallel(g, *source, threads)),
        Algorithm::Conn => Output::Components(conn::connected_components_parallel(g, threads)),
        Algorithm::PageRank {
            iterations,
            damping,
        } => Output::Ranks(pagerank::pagerank_parallel(
            g,
            *iterations,
            *damping,
            threads,
        )),
        Algorithm::Sssp { source } => Output::Distances(sssp::sssp_parallel(g, *source, threads)),
        Algorithm::Lcc => Output::LocalClustering(lcc::local_clustering_parallel(g, threads)),
        other => reference(g, other),
    }
}

/// Runs the reference implementation of `alg` on `g`.
pub fn reference(g: &CsrGraph, alg: &Algorithm) -> Output {
    match alg {
        Algorithm::Stats => Output::Stats(stats::stats(g)),
        Algorithm::Bfs { source } => Output::Depths(bfs::bfs(g, *source)),
        Algorithm::Conn => Output::Components(conn::connected_components(g)),
        Algorithm::Cd {
            iterations,
            hop_attenuation,
            degree_exponent,
        } => Output::Communities(cd::community_detection(
            g,
            *iterations,
            *hop_attenuation,
            *degree_exponent,
        )),
        Algorithm::Evo {
            new_vertices,
            p_forward,
            max_burst,
            seed,
        } => Output::Evolution(evo::forest_fire(
            g,
            *new_vertices,
            *p_forward,
            *max_burst,
            *seed,
        )),
        Algorithm::PageRank {
            iterations,
            damping,
        } => Output::Ranks(pagerank::pagerank(g, *iterations, *damping)),
        Algorithm::Sssp { source } => Output::Distances(sssp::sssp(g, *source)),
        Algorithm::Lcc => Output::LocalClustering(lcc::local_clustering(g)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(vec![
            (0, 1),
            (1, 2),
            (0, 2),
        ]))
    }

    #[test]
    fn names_match_paper_acronyms() {
        let names: Vec<&str> = Algorithm::paper_workload()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(names, vec!["STATS", "BFS", "CONN", "CD", "EVO"]);
    }

    #[test]
    fn partition_equality_up_to_renaming() {
        assert!(partitions_equal(&[0, 0, 1, 1], &[7, 7, 3, 3]));
        assert!(!partitions_equal(&[0, 0, 1, 1], &[7, 3, 3, 3]));
        assert!(!partitions_equal(&[0, 0, 1, 1], &[7, 7, 7, 7]));
        assert!(!partitions_equal(&[0, 0], &[0, 0, 0]));
        assert!(partitions_equal(&[], &[]));
    }

    #[test]
    fn output_equivalence_rules() {
        assert!(Output::Depths(vec![0, 1, -1]).equivalent(&Output::Depths(vec![0, 1, -1])));
        assert!(!Output::Depths(vec![0, 1]).equivalent(&Output::Depths(vec![0, 2])));
        assert!(Output::Components(vec![1, 1, 2]).equivalent(&Output::Components(vec![9, 9, 4])));
        assert!(Output::Ranks(vec![0.5, 0.5]).equivalent(&Output::Ranks(vec![0.5 + 1e-10, 0.5])));
        assert!(!Output::Ranks(vec![0.5, 0.5]).equivalent(&Output::Ranks(vec![0.6, 0.4])));
        // SSSP distances compare exactly (integer-scaled weights).
        assert!(Output::Distances(vec![0, 7, INFINITY])
            .equivalent(&Output::Distances(vec![0, 7, INFINITY])));
        assert!(!Output::Distances(vec![0, 7]).equivalent(&Output::Distances(vec![0, 8])));
        // LCC coefficients compare with the floating-point tolerance.
        assert!(Output::LocalClustering(vec![0.5])
            .equivalent(&Output::LocalClustering(vec![0.5 + 1e-10])));
        assert!(!Output::LocalClustering(vec![0.5]).equivalent(&Output::LocalClustering(vec![0.6])));
        // Cross-kind comparisons are never equivalent.
        assert!(!Output::Depths(vec![]).equivalent(&Output::Components(vec![])));
        assert!(!Output::Distances(vec![]).equivalent(&Output::Depths(vec![])));
        assert!(!Output::LocalClustering(vec![]).equivalent(&Output::Ranks(vec![])));
    }

    #[test]
    fn reference_dispatches_every_algorithm() {
        let g = triangle();
        for alg in Algorithm::ldbc_workload() {
            let out = reference(&g, &alg);
            assert!(!out.summary().is_empty(), "{alg:?}");
        }
        let pr = reference(&g, &Algorithm::default_pagerank());
        assert!(matches!(pr, Output::Ranks(_)));
    }

    #[test]
    fn ldbc_workload_extends_the_paper_five() {
        let names: Vec<&str> = Algorithm::ldbc_workload()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(
            names,
            vec!["STATS", "BFS", "CONN", "CD", "EVO", "SSSP", "LCC"]
        );
    }

    #[test]
    fn summaries_are_informative() {
        let g = triangle();
        let s = reference(&g, &Algorithm::Stats).summary();
        assert!(s.contains("|V|=3"));
        let d = reference(&g, &Algorithm::Bfs { source: 0 }).summary();
        assert!(d.contains("reached=3"));
    }
}
