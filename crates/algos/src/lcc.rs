//! LCC kernel: the per-vertex local clustering coefficient — the LDBC
//! Graphalytics workload's full-output variant of the STATS mean.
//!
//! For a vertex `v` with degree `d`, the coefficient is the fraction of
//! neighbor pairs that are themselves connected: `2·tri(v) / (d·(d−1))` on
//! an undirected graph, and 0 when `d < 2` (no pair exists).

use graphalytics_graph::metrics;
use graphalytics_graph::{CsrGraph, Vid};
use graphalytics_parallel as par;

/// Local clustering coefficient of every vertex, in internal-id order.
/// Values lie in `[0, 1]`; vertices of degree < 2 get exactly `0.0`.
pub fn local_clustering(g: &CsrGraph) -> Vec<f64> {
    (0..g.num_vertices() as Vid)
        .map(|v| metrics::local_clustering_coefficient(g, v))
        .collect()
}

/// Parallel LCC on up to `threads` workers.
///
/// Deterministic: each vertex's coefficient depends only on its own
/// adjacency, and the chunk-ordered concatenation preserves internal-id
/// order — the output is byte-identical to [`local_clustering`] for any
/// thread count.
pub fn local_clustering_parallel(g: &CsrGraph, threads: usize) -> Vec<f64> {
    let threads = threads.max(1);
    let n = g.num_vertices();
    par::map_chunks(threads, n, |_, range| {
        range
            .map(|v| metrics::local_clustering_coefficient(g, v as Vid))
            .collect::<Vec<f64>>()
    })
    .concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_graph::EdgeListGraph;

    fn csr(edges: Vec<(u64, u64)>) -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeListGraph::undirected_from_edges(edges))
    }

    #[test]
    fn triangle_vertices_score_one() {
        let g = csr(vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(local_clustering(&g), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn path_vertices_score_zero() {
        let g = csr(vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(local_clustering(&g), vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn triangle_with_pendant_mixes_coefficients() {
        // Vertex 0 has neighbors {1, 2, 3}; only the (1, 2) pair is linked.
        let g = csr(vec![(0, 1), (1, 2), (0, 2), (0, 3)]);
        let cc = local_clustering(&g);
        assert!((cc[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cc[1], 1.0);
        assert_eq!(cc[2], 1.0);
        assert_eq!(cc[3], 0.0); // Degree 1.
    }

    #[test]
    fn empty_graph_yields_empty_output() {
        let g = csr(vec![]);
        assert!(local_clustering(&g).is_empty());
        assert!(local_clustering_parallel(&g, 4).is_empty());
    }

    #[test]
    fn coefficients_stay_in_unit_interval() {
        let mut edges: Vec<(u64, u64)> = (1..30).map(|i| (0, i)).collect();
        edges.extend((1..30).map(|i| (i, (i % 29) + 1)).filter(|&(a, b)| a != b));
        let g = csr(edges);
        for (v, &c) in local_clustering(&g).iter().enumerate() {
            assert!((0.0..=1.0).contains(&c), "vertex {v} got {c}");
        }
    }

    #[test]
    fn parallel_matches_sequential_bytewise() {
        let mut edges: Vec<(u64, u64)> = (1..50).map(|i| (0, i)).collect();
        edges.extend((50..90).map(|i| (i, i + 1)));
        edges.extend([(10, 20), (20, 30), (10, 30), (70, 72)]);
        let g = csr(edges);
        let seq = local_clustering(&g);
        for threads in [1usize, 2, 8] {
            let par_out = local_clustering_parallel(&g, threads);
            assert_eq!(par_out.len(), seq.len());
            for (a, b) in par_out.iter().zip(&seq) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }
}
