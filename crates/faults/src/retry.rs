//! Retry policy: bounded attempts, exponential backoff, seed-derived
//! jitter — over a **virtual** clock.
//!
//! The backoff never sleeps and never reads real time. Delays are plain
//! `u64` milliseconds accumulated on a [`VirtualClock`], so the retry
//! schedule is byte-reproducible (this crate is inside the lint's
//! determinism scope: no `Instant`, no OS entropy) and a faulty benchmark
//! run costs no extra wall time waiting.

/// Jitter hash (SplitMix64 finalizer, same as in `plan.rs`).
fn jitter_hash(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded-attempt retry with exponential, seed-jittered virtual backoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff charged after the first failure (virtual ms); doubles per
    /// subsequent failure.
    pub base_backoff_ms: u64,
    /// Backoff ceiling (virtual ms).
    pub max_backoff_ms: u64,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries at all (the harness default).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            jitter_seed: 0,
        }
    }

    /// `max_attempts` total attempts, backoff starting at `base_ms` and
    /// capped at `64 × base_ms`, jittered from `seed`.
    pub fn new(max_attempts: u32, base_ms: u64, seed: u64) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_backoff_ms: base_ms,
            max_backoff_ms: base_ms.saturating_mul(64),
            jitter_seed: seed,
        }
    }

    /// True when attempt number `attempt` (0-based) may still run.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// Virtual backoff before retrying after failure number
    /// `failed_attempt` (0-based): exponential with "equal jitter" — the
    /// delay lands in `[half, full]` of the exponential step, where the
    /// jitter is a pure function of `(jitter_seed, failed_attempt)`.
    pub fn backoff_ms(&self, failed_attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << failed_attempt.min(32))
            .min(self.max_backoff_ms.max(self.base_backoff_ms));
        let half = exp / 2;
        half + jitter_hash(self.jitter_seed ^ (failed_attempt as u64)) % (exp - half + 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// A monotonically advancing millisecond counter standing in for the wall
/// clock wherever backoff must be charged without sleeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances by `ms` and returns the new now.
    pub fn advance(&mut self, ms: u64) -> u64 {
        self.now_ms = self.now_ms.saturating_add(ms);
        self.now_ms
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_allows_exactly_one_attempt() {
        let p = RetryPolicy::none();
        assert!(p.allows(0));
        assert!(!p.allows(1));
        assert_eq!(p.backoff_ms(0), 0);
    }

    #[test]
    fn attempts_are_bounded() {
        let p = RetryPolicy::new(3, 10, 42);
        assert!(p.allows(0));
        assert!(p.allows(2));
        assert!(!p.allows(3));
    }

    #[test]
    fn backoff_grows_and_stays_in_jitter_window() {
        let p = RetryPolicy::new(8, 100, 7);
        for a in 0..8u32 {
            let exp = (100u64 << a).min(p.max_backoff_ms);
            let b = p.backoff_ms(a);
            assert!(b >= exp / 2 && b <= exp, "attempt {a}: {b} not in window");
        }
        // Caps at max_backoff_ms even for huge attempt numbers.
        assert!(p.backoff_ms(40) <= p.max_backoff_ms);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy::new(5, 50, 1);
        let b = RetryPolicy::new(5, 50, 1);
        let c = RetryPolicy::new(5, 50, 2);
        let seq = |p: &RetryPolicy| (0..5).map(|i| p.backoff_ms(i)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b));
        assert_ne!(seq(&a), seq(&c));
    }

    #[test]
    fn virtual_clock_accumulates() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        assert_eq!(clock.advance(100), 100);
        assert_eq!(clock.advance(50), 150);
        assert_eq!(clock.now_ms(), 150);
        assert_eq!(clock.advance(u64::MAX), u64::MAX);
    }
}
