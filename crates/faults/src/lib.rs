//! # graphalytics-faults
//!
//! Deterministic fault injection and recovery machinery (DESIGN.md §5c).
//!
//! The paper's Figure 4 treats platform failures as first-class benchmark
//! results ("missing values indicate failures"), and the successor LDBC
//! Graphalytics specification promotes *robustness* — failure behavior and
//! recovery cost — to its own benchmark dimension. This crate supplies the
//! ingredients:
//!
//! * [`FaultPlan`] — a pure function from `(seed, site)` to "does a fault
//!   strike here?". No wall clock, no OS entropy: the same seed and the
//!   same sites produce the same faults regardless of thread interleaving
//!   or call order, so faulty runs are as reproducible as clean ones.
//! * [`FaultSite`] — the typed injection points the engines register:
//!   worker crash at a superstep boundary (pregel), partition loss during
//!   a shuffle (dataflow), transient I/O in a task attempt (mapreduce),
//!   allocation failure under a memory budget (columnar/dataflow). Each
//!   site carries its attempt/incarnation counter, so a *retried* attempt
//!   re-rolls the dice instead of deterministically failing forever.
//! * [`FaultInjector`] — wraps a plan with thread-safe injection and
//!   recovery logs, the evidence the determinism tests compare.
//! * [`RetryPolicy`] / [`VirtualClock`] — bounded attempts with
//!   exponential backoff and seed-derived jitter over a virtual
//!   millisecond clock (nothing sleeps; determinism-critical code never
//!   reads real time).
//! * [`Snapshot`] / [`CheckpointCodec`] — the byte codec behind the pregel
//!   engine's superstep-boundary checkpoints (vertex state + pending
//!   messages), round-trip-exact by construction.
//!
//! The crate is dependency-free (std only) and sits below
//! `graphalytics-core`: engines reach the injector through the harness's
//! `RunContext`, and with no injector attached every hook is a no-op.

mod checkpoint;
mod injector;
mod plan;
mod retry;

pub use checkpoint::{CheckpointCodec, Snapshot};
pub use injector::{FaultInjector, RecoveryAction, RecoveryEvent};
pub use plan::{fingerprint, FaultKind, FaultPlan, FaultSite};
pub use retry::{RetryPolicy, VirtualClock};
