//! Checkpoint byte codec: the serialization behind the pregel engine's
//! superstep-boundary snapshots (vertex state + pending messages).
//!
//! The format is deliberately dumb — little-endian fixed-width fields,
//! length-prefixed sequences, no compression — so `decode(encode(x)) == x`
//! and `encode(decode(b)) == b` hold *byte for byte*, the property the
//! checkpoint round-trip suite pins with generated graphs. f64 travels as
//! its IEEE bit pattern, so NaN payloads and signed zeros survive too.

/// Fixed binary encoding for checkpointable values. Implemented for the
/// primitives the built-in vertex programs use; platform crates implement
/// it for their own state structs (e.g. the CD program's label/score
/// pair).
pub trait CheckpointCodec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Decodes one value starting at `*pos`, advancing it. `None` on
    /// truncated or malformed input.
    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self>;
}

macro_rules! impl_codec_le {
    ($($t:ty),*) => {$(
        impl CheckpointCodec for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
                const N: usize = std::mem::size_of::<$t>();
                let bytes = buf.get(*pos..*pos + N)?;
                *pos += N;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

impl_codec_le!(u32, u64, i64);

impl CheckpointCodec for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some(f64::from_bits(u64::decode_from(buf, pos)?))
    }
}

impl CheckpointCodec for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let b = *buf.get(*pos)?;
        *pos += 1;
        match b {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl CheckpointCodec for () {
    fn encode_into(&self, _out: &mut Vec<u8>) {}
    fn decode_from(_buf: &[u8], _pos: &mut usize) -> Option<Self> {
        Some(())
    }
}

impl<T: CheckpointCodec> CheckpointCodec for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_into(out);
        for item in self {
            item.encode_into(out);
        }
    }
    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let len = u64::decode_from(buf, pos)?;
        // Reject absurd lengths before reserving (truncated-input safety).
        if len as usize > buf.len().saturating_sub(*pos).saturating_add(1) * 8 {
            return None;
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            v.push(T::decode_from(buf, pos)?);
        }
        Some(v)
    }
}

impl<A: CheckpointCodec, B: CheckpointCodec> CheckpointCodec for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((A::decode_from(buf, pos)?, B::decode_from(buf, pos)?))
    }
}

impl<A: CheckpointCodec, B: CheckpointCodec, C: CheckpointCodec> CheckpointCodec for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        Some((
            A::decode_from(buf, pos)?,
            B::decode_from(buf, pos)?,
            C::decode_from(buf, pos)?,
        ))
    }
}

/// Magic prefix + format version of the snapshot encoding.
const SNAPSHOT_MAGIC: u32 = 0x4758_4350; // "GXCP"
const SNAPSHOT_VERSION: u32 = 1;

/// One superstep-boundary snapshot of a BSP computation: everything needed
/// to restart the superstep as if the crash never happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot<S, M> {
    /// The superstep about to execute when the snapshot was taken.
    pub superstep: u64,
    /// Per-vertex state.
    pub states: Vec<S>,
    /// Pending (undelivered) messages per vertex.
    pub inbox: Vec<Vec<M>>,
    /// Per-vertex active flags (vote-to-halt status).
    pub active: Vec<bool>,
    /// The aggregator value visible to the snapshot superstep.
    pub aggregate: f64,
}

impl<S: CheckpointCodec, M: CheckpointCodec> Snapshot<S, M> {
    /// Serializes the snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        SNAPSHOT_MAGIC.encode_into(&mut out);
        SNAPSHOT_VERSION.encode_into(&mut out);
        self.superstep.encode_into(&mut out);
        self.states.encode_into(&mut out);
        self.inbox.encode_into(&mut out);
        self.active.encode_into(&mut out);
        self.aggregate.encode_into(&mut out);
        out
    }

    /// Deserializes a snapshot; `None` on any malformation, including
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        if u32::decode_from(bytes, &mut pos)? != SNAPSHOT_MAGIC
            || u32::decode_from(bytes, &mut pos)? != SNAPSHOT_VERSION
        {
            return None;
        }
        let snap = Snapshot {
            superstep: u64::decode_from(bytes, &mut pos)?,
            states: Vec::decode_from(bytes, &mut pos)?,
            inbox: Vec::decode_from(bytes, &mut pos)?,
            active: Vec::decode_from(bytes, &mut pos)?,
            aggregate: f64::decode_from(bytes, &mut pos)?,
        };
        (pos == bytes.len()).then_some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: CheckpointCodec + PartialEq + std::fmt::Debug + Clone>(x: T) {
        let mut buf = Vec::new();
        x.encode_into(&mut buf);
        let mut pos = 0;
        let back = T::decode_from(&buf, &mut pos).expect("decodes");
        assert_eq!(pos, buf.len());
        assert_eq!(back, x);
        // Re-encoding the decoded value is byte-identical.
        let mut buf2 = Vec::new();
        back.encode_into(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX - 1);
        roundtrip(-42i64);
        roundtrip(3.25f64);
        roundtrip(-0.0f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<i64>::new());
        roundtrip(vec![vec![(1u32, 2.0f64, 3.0f64)], vec![]]);
        roundtrip((7u32, -1i64));
    }

    #[test]
    fn f64_bit_patterns_survive() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut buf = Vec::new();
        nan.encode_into(&mut buf);
        let mut pos = 0;
        let back = f64::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
        assert_eq!((-0.0f64).to_bits(), {
            let mut b = Vec::new();
            (-0.0f64).encode_into(&mut b);
            let mut p = 0;
            f64::decode_from(&b, &mut p).unwrap().to_bits()
        });
    }

    #[test]
    fn truncated_and_malformed_inputs_fail_cleanly() {
        let mut pos = 0;
        assert!(u64::decode_from(&[1, 2, 3], &mut pos).is_none());
        let mut pos = 0;
        assert!(bool::decode_from(&[7], &mut pos).is_none());
        // A length prefix promising more data than exists.
        let mut buf = Vec::new();
        (u64::MAX).encode_into(&mut buf);
        let mut pos = 0;
        assert!(Vec::<u64>::decode_from(&buf, &mut pos).is_none());
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let snap: Snapshot<i64, i64> = Snapshot {
            superstep: 4,
            states: vec![-1, 0, 2, 3],
            inbox: vec![vec![], vec![1, 2], vec![3], vec![]],
            active: vec![true, false, true, true],
            aggregate: 2.5,
        };
        let bytes = snap.encode();
        let back = Snapshot::<i64, i64>::decode(&bytes).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(Snapshot::<u32, u32>::decode(&[]).is_none());
        assert!(Snapshot::<u32, u32>::decode(&[0; 16]).is_none());
        let snap: Snapshot<u32, u32> = Snapshot {
            superstep: 0,
            states: vec![],
            inbox: vec![],
            active: vec![],
            aggregate: 0.0,
        };
        let mut bytes = snap.encode();
        bytes.push(0); // Trailing garbage.
        assert!(Snapshot::<u32, u32>::decode(&bytes).is_none());
    }
}
