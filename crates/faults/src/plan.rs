//! Fault plans: pure, seed-derived decisions about where faults strike.
//!
//! A [`FaultPlan`] never draws from a stateful RNG. Every decision is
//! `hash(seed, site) < rate`, a pure function of the plan and the
//! [`FaultSite`] identity, so the set of injected faults is independent of
//! thread scheduling, call order, and how many *other* sites were probed
//! first — the property the fault-determinism tests pin.

/// One SplitMix64 output step — the same finalizer as
/// `graphalytics_graph::rng::SplitMix64`, repeated here because this crate
/// is dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes `v` into the running hash `h` (order-sensitive, avalanching).
fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31))
}

/// Stable 64-bit fingerprint of a string (job names, allocation scopes).
pub fn fingerprint(s: &str) -> u64 {
    let mut h = 0x5851_F42D_4C95_7F2D;
    for chunk in s.as_bytes().chunks(8) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= (b as u64) << (8 * i);
        }
        h = mix(h, word ^ chunk.len() as u64);
    }
    h
}

/// The categories of fault the engines know how to inject (and recover
/// from).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A pregel worker crashes at a superstep boundary; recovery restarts
    /// from the last superstep-boundary checkpoint.
    WorkerCrash,
    /// A shuffle output partition is lost in the dataflow engine; recovery
    /// recomputes it from the parent dataset (lineage).
    PartitionLoss,
    /// A map/reduce task attempt hits a transient I/O error; recovery is a
    /// fresh task attempt (Hadoop's speculative re-execution, minus the
    /// speculation).
    TaskIo,
    /// An allocation transiently fails under the memory budget; recovery
    /// retries the allocation.
    AllocFailure,
}

impl FaultKind {
    /// All kinds, in rate-table order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::WorkerCrash,
        FaultKind::PartitionLoss,
        FaultKind::TaskIo,
        FaultKind::AllocFailure,
    ];

    /// Stable label (used on spans and metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::WorkerCrash => "worker_crash",
            FaultKind::PartitionLoss => "partition_loss",
            FaultKind::TaskIo => "task_io",
            FaultKind::AllocFailure => "alloc_failure",
        }
    }

    fn index(&self) -> usize {
        match self {
            FaultKind::WorkerCrash => 0,
            FaultKind::PartitionLoss => 1,
            FaultKind::TaskIo => 2,
            FaultKind::AllocFailure => 3,
        }
    }
}

/// A typed injection point. The attempt/incarnation counters are part of
/// the identity on purpose: a retried attempt is a *different* site, so it
/// re-rolls instead of hitting the same deterministic fault forever.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// Worker `worker` at the start of `superstep`, within checkpoint
    /// incarnation `incarnation` (bumped on every restart).
    PregelWorker {
        /// Superstep about to execute.
        superstep: u64,
        /// Worker index.
        worker: u32,
        /// Restart incarnation (0 = first execution).
        incarnation: u32,
    },
    /// Output partition `partition` of the `shuffle`-th shuffle of a job.
    ShufflePartition {
        /// Shuffle ordinal within the job's SparkContext.
        shuffle: u32,
        /// Destination partition index.
        partition: u32,
        /// Recompute attempt (0 = first materialization).
        attempt: u32,
    },
    /// Task `task` of the job fingerprinted as `job`, attempt `attempt`.
    TaskIo {
        /// [`fingerprint`] of the job name.
        job: u64,
        /// Task index within the phase.
        task: u32,
        /// Task attempt (0 = first attempt).
        attempt: u32,
    },
    /// The `sequence`-th allocation in scope `scope`, attempt `attempt`.
    Alloc {
        /// [`fingerprint`] of the allocation scope (e.g. an operator name).
        scope: u64,
        /// Allocation ordinal within the scope.
        sequence: u64,
        /// Retry attempt (0 = first try).
        attempt: u32,
    },
}

impl FaultSite {
    /// The fault category this site belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultSite::PregelWorker { .. } => FaultKind::WorkerCrash,
            FaultSite::ShufflePartition { .. } => FaultKind::PartitionLoss,
            FaultSite::TaskIo { .. } => FaultKind::TaskIo,
            FaultSite::Alloc { .. } => FaultKind::AllocFailure,
        }
    }

    /// Stable hash of the full site identity.
    pub fn key(&self) -> u64 {
        let h = mix(0x6661756C74, self.kind().index() as u64);
        match *self {
            FaultSite::PregelWorker {
                superstep,
                worker,
                incarnation,
            } => mix(mix(mix(h, superstep), worker as u64), incarnation as u64),
            FaultSite::ShufflePartition {
                shuffle,
                partition,
                attempt,
            } => mix(
                mix(mix(h, shuffle as u64), partition as u64),
                attempt as u64,
            ),
            FaultSite::TaskIo { job, task, attempt } => {
                mix(mix(mix(h, job), task as u64), attempt as u64)
            }
            FaultSite::Alloc {
                scope,
                sequence,
                attempt,
            } => mix(mix(mix(h, scope), sequence), attempt as u64),
        }
    }

    /// Human-readable site description (span field material).
    pub fn describe(&self) -> String {
        match self {
            FaultSite::PregelWorker {
                superstep,
                worker,
                incarnation,
            } => format!("pregel worker {worker} superstep {superstep} incarnation {incarnation}"),
            FaultSite::ShufflePartition {
                shuffle,
                partition,
                attempt,
            } => format!("shuffle {shuffle} partition {partition} attempt {attempt}"),
            FaultSite::TaskIo { job, task, attempt } => {
                format!("job {job:016x} task {task} attempt {attempt}")
            }
            FaultSite::Alloc {
                scope,
                sequence,
                attempt,
            } => format!("alloc scope {scope:016x} seq {sequence} attempt {attempt}"),
        }
    }
}

/// Wire encoding for fault sites: a one-byte variant tag followed by the
/// variant fields in declaration order. Used by the distributed runtime to
/// ship a plan to worker processes; the encoding round-trips exactly, so a
/// worker's plan decides the same sites as the master's.
impl crate::checkpoint::CheckpointCodec for FaultSite {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            FaultSite::PregelWorker {
                superstep,
                worker,
                incarnation,
            } => {
                out.push(0);
                superstep.encode_into(out);
                worker.encode_into(out);
                incarnation.encode_into(out);
            }
            FaultSite::ShufflePartition {
                shuffle,
                partition,
                attempt,
            } => {
                out.push(1);
                shuffle.encode_into(out);
                partition.encode_into(out);
                attempt.encode_into(out);
            }
            FaultSite::TaskIo { job, task, attempt } => {
                out.push(2);
                job.encode_into(out);
                task.encode_into(out);
                attempt.encode_into(out);
            }
            FaultSite::Alloc {
                scope,
                sequence,
                attempt,
            } => {
                out.push(3);
                scope.encode_into(out);
                sequence.encode_into(out);
                attempt.encode_into(out);
            }
        }
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        use crate::checkpoint::CheckpointCodec as C;
        Some(match tag {
            0 => FaultSite::PregelWorker {
                superstep: C::decode_from(buf, pos)?,
                worker: C::decode_from(buf, pos)?,
                incarnation: C::decode_from(buf, pos)?,
            },
            1 => FaultSite::ShufflePartition {
                shuffle: C::decode_from(buf, pos)?,
                partition: C::decode_from(buf, pos)?,
                attempt: C::decode_from(buf, pos)?,
            },
            2 => FaultSite::TaskIo {
                job: C::decode_from(buf, pos)?,
                task: C::decode_from(buf, pos)?,
                attempt: C::decode_from(buf, pos)?,
            },
            3 => FaultSite::Alloc {
                scope: C::decode_from(buf, pos)?,
                sequence: C::decode_from(buf, pos)?,
                attempt: C::decode_from(buf, pos)?,
            },
            _ => return None,
        })
    }
}

/// A seed-derived fault schedule: per-kind probabilities plus an explicit
/// list of forced sites (for differential tests that need "worker 0
/// crashes at superstep 2" exactly once).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; 4],
    forced: Vec<FaultSite>,
}

impl crate::checkpoint::CheckpointCodec for FaultPlan {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.seed.encode_into(out);
        for r in self.rates {
            r.encode_into(out);
        }
        self.forced.encode_into(out);
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use crate::checkpoint::CheckpointCodec as C;
        let seed = u64::decode_from(buf, pos)?;
        let mut rates = [0.0f64; 4];
        for r in &mut rates {
            *r = f64::decode_from(buf, pos)?;
        }
        Some(FaultPlan {
            seed,
            rates,
            forced: C::decode_from(buf, pos)?,
        })
    }
}

impl FaultPlan {
    /// The all-off plan: decides `false` everywhere.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An empty plan carrying `seed`; add rates or forced sites next.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets the probability (clamped to `[0, 1]`) for one fault kind.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        self.rates[kind.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the same probability for every fault kind.
    pub fn with_uniform_rate(mut self, rate: f64) -> Self {
        for kind in FaultKind::ALL {
            self = self.with_rate(kind, rate);
        }
        self
    }

    /// Forces a fault at exactly `site` (matched by full identity, so a
    /// retried/restarted attempt with a bumped counter does not re-fire).
    pub fn force(mut self, site: FaultSite) -> Self {
        self.forced.push(site);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan can ever decide `true`.
    pub fn enabled(&self) -> bool {
        !self.forced.is_empty() || self.rates.iter().any(|&r| r > 0.0)
    }

    /// Does a fault strike at `site`? Pure: same plan + same site ⇒ same
    /// answer, regardless of when or from which thread it is asked.
    pub fn decides(&self, site: &FaultSite) -> bool {
        if self.forced.contains(site) {
            return true;
        }
        let rate = self.rates[site.kind().index()];
        if rate <= 0.0 {
            return false;
        }
        // Top 53 bits as a unit fraction in [0, 1).
        let roll = (mix(self.seed, site.key()) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        roll < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(superstep: u64, worker: u32) -> FaultSite {
        FaultSite::PregelWorker {
            superstep,
            worker,
            incarnation: 0,
        }
    }

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.enabled());
        for s in 0..100 {
            assert!(!plan.decides(&site(s, 0)));
        }
    }

    #[test]
    fn decisions_are_pure_and_order_independent() {
        let plan = FaultPlan::seeded(7).with_uniform_rate(0.5);
        let forward: Vec<bool> = (0..64).map(|s| plan.decides(&site(s, 1))).collect();
        let backward: Vec<bool> = (0..64).rev().map(|s| plan.decides(&site(s, 1))).collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|&b| b));
        assert!(forward.iter().any(|&b| !b));
    }

    #[test]
    fn rate_one_always_fires_and_tracks_frequency() {
        let always = FaultPlan::seeded(3).with_rate(FaultKind::TaskIo, 1.0);
        let mut hits = 0;
        for t in 0..1000u32 {
            let s = FaultSite::TaskIo {
                job: 9,
                task: t,
                attempt: 0,
            };
            assert!(always.decides(&s));
            let tenth = FaultPlan::seeded(3).with_rate(FaultKind::TaskIo, 0.1);
            if tenth.decides(&s) {
                hits += 1;
            }
        }
        // 10% rate over 1000 independent sites: loose 3-sigma bounds.
        assert!((60..160).contains(&hits), "hits={hits}");
    }

    #[test]
    fn forced_sites_match_exact_identity_only() {
        let plan = FaultPlan::seeded(0).force(site(2, 0));
        assert!(plan.enabled());
        assert!(plan.decides(&site(2, 0)));
        assert!(!plan.decides(&site(2, 1)));
        assert!(!plan.decides(&site(3, 0)));
        // The bumped incarnation after a restart is a different site.
        assert!(!plan.decides(&FaultSite::PregelWorker {
            superstep: 2,
            worker: 0,
            incarnation: 1,
        }));
    }

    #[test]
    fn attempt_counter_rerolls_the_dice() {
        let plan = FaultPlan::seeded(11).with_rate(FaultKind::TaskIo, 0.5);
        let outcomes: Vec<bool> = (0..64)
            .map(|a| {
                plan.decides(&FaultSite::TaskIo {
                    job: 1,
                    task: 1,
                    attempt: a,
                })
            })
            .collect();
        assert!(outcomes.iter().any(|&b| b));
        assert!(outcomes.iter().any(|&b| !b));
    }

    #[test]
    fn kinds_are_independent() {
        let plan = FaultPlan::seeded(5).with_rate(FaultKind::WorkerCrash, 1.0);
        assert!(plan.decides(&site(0, 0)));
        assert!(!plan.decides(&FaultSite::Alloc {
            scope: 1,
            sequence: 0,
            attempt: 0,
        }));
    }

    #[test]
    fn plan_and_site_wire_round_trip() {
        use crate::checkpoint::CheckpointCodec;

        let plan = FaultPlan::seeded(42)
            .with_rate(FaultKind::WorkerCrash, 0.25)
            .force(site(2, 0))
            .force(FaultSite::Alloc {
                scope: 7,
                sequence: 9,
                attempt: 1,
            });
        let mut buf = Vec::new();
        plan.encode_into(&mut buf);
        let mut pos = 0;
        let back = FaultPlan::decode_from(&buf, &mut pos).expect("decodes");
        assert_eq!(pos, buf.len());
        assert_eq!(back, plan);
        // The decoded plan makes identical decisions.
        for s in 0..32 {
            for w in 0..4 {
                assert_eq!(plan.decides(&site(s, w)), back.decides(&site(s, w)));
            }
        }
        // A truncated plan fails cleanly.
        let mut pos = 0;
        assert!(FaultPlan::decode_from(&buf[..buf.len() - 1], &mut pos).is_none());
        // An unknown site tag fails cleanly.
        let mut pos = 0;
        assert!(FaultSite::decode_from(&[9u8; 16], &mut pos).is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_collision_averse() {
        assert_eq!(fingerprint("bfs"), fingerprint("bfs"));
        assert_ne!(fingerprint("bfs"), fingerprint("conn"));
        assert_ne!(fingerprint("ab"), fingerprint("ba"));
        assert_ne!(fingerprint(""), fingerprint("a"));
    }

    #[test]
    fn site_keys_differ_across_fields() {
        let a = site(1, 0);
        let b = site(1, 1);
        let c = site(2, 0);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_ne!(b.key(), c.key());
        assert!(a.describe().contains("superstep 1"));
    }
}
