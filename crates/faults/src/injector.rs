//! The fault injector: a [`FaultPlan`] plus thread-safe logs of what was
//! injected and how the engines recovered.
//!
//! The logs are the evidence the fault-determinism tests compare: two runs
//! with the same seed and plan must produce identical injection and
//! recovery logs. Engines record from worker threads, so the accessors
//! return *sorted* copies — the canonical order is the site/event identity,
//! not the (nondeterministic) arrival order.

use std::sync::Mutex;

use crate::plan::{FaultPlan, FaultSite};

/// What an engine did about a fault (or, for checkpoints, ahead of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecoveryAction {
    /// A pregel superstep-boundary checkpoint was saved (preparation, not
    /// recovery — excluded from the recovery counter).
    Checkpoint,
    /// Pregel restarted from the last checkpoint after a worker loss.
    CheckpointRestart,
    /// Dataflow recomputed a lost shuffle partition from its parent.
    LineageRecompute,
    /// MapReduce re-attempted a task after a transient I/O error.
    TaskRetry,
    /// An allocation was retried after a transient failure.
    AllocRetry,
    /// The runner re-ran a whole platform run after a transient error.
    RunRetry,
}

impl RecoveryAction {
    /// Stable label (metric label / span field material).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryAction::Checkpoint => "checkpoint",
            RecoveryAction::CheckpointRestart => "checkpoint_restart",
            RecoveryAction::LineageRecompute => "lineage_recompute",
            RecoveryAction::TaskRetry => "task_retry",
            RecoveryAction::AllocRetry => "alloc_retry",
            RecoveryAction::RunRetry => "run_retry",
        }
    }

    /// True for actual recoveries (everything but checkpoint saves).
    pub fn is_recovery(&self) -> bool {
        !matches!(self, RecoveryAction::Checkpoint)
    }
}

/// One recovery (or checkpoint) event.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecoveryEvent {
    /// What happened.
    pub action: RecoveryAction,
    /// The fault site that triggered it, when one did (checkpoint saves
    /// and runner reruns of organic transient errors carry `None`).
    pub site: Option<FaultSite>,
    /// Virtual backoff milliseconds charged before the retry (0 for
    /// immediate recoveries).
    pub backoff_ms: u64,
}

/// A fault plan with injection/recovery logs. Shared across engine worker
/// threads via `Arc`; with a [`FaultPlan::disabled`] plan every probe is a
/// cheap `false`.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    injected: Mutex<Vec<FaultSite>>,
    recoveries: Mutex<Vec<RecoveryEvent>>,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            injected: Mutex::new(Vec::new()),
            recoveries: Mutex::new(Vec::new()),
        }
    }

    /// An injector that never fires (all hooks become no-ops).
    pub fn disabled() -> Self {
        Self::new(FaultPlan::disabled())
    }

    /// The plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the plan can ever fire.
    pub fn enabled(&self) -> bool {
        self.plan.enabled()
    }

    /// Pure decision: does a fault strike at `site`? Does not log.
    pub fn decide(&self, site: &FaultSite) -> bool {
        self.plan.decides(site)
    }

    /// Records an injected fault.
    pub fn record_injection(&self, site: FaultSite) {
        lock(&self.injected).push(site);
    }

    /// Records a recovery (or checkpoint) event.
    pub fn record_recovery(&self, event: RecoveryEvent) {
        lock(&self.recoveries).push(event);
    }

    /// All injected faults, in canonical (sorted) order.
    pub fn injected(&self) -> Vec<FaultSite> {
        let mut v = lock(&self.injected).clone();
        v.sort();
        v
    }

    /// All recovery/checkpoint events, in canonical (sorted) order.
    pub fn recoveries(&self) -> Vec<RecoveryEvent> {
        let mut v = lock(&self.recoveries).clone();
        v.sort();
        v
    }

    /// Number of injected faults.
    pub fn injected_count(&self) -> usize {
        lock(&self.injected).len()
    }

    /// Number of actual recoveries (checkpoint saves excluded).
    pub fn recovery_count(&self) -> usize {
        lock(&self.recoveries)
            .iter()
            .filter(|e| e.action.is_recovery())
            .count()
    }

    /// Number of checkpoint saves.
    pub fn checkpoint_count(&self) -> usize {
        lock(&self.recoveries)
            .iter()
            .filter(|e| e.action == RecoveryAction::Checkpoint)
            .count()
    }
}

/// Poison-tolerant lock: a panicked worker must not wedge the harness.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    fn site(worker: u32) -> FaultSite {
        FaultSite::PregelWorker {
            superstep: 0,
            worker,
            incarnation: 0,
        }
    }

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::disabled();
        assert!(!inj.enabled());
        assert!(!inj.decide(&site(0)));
        assert_eq!(inj.injected_count(), 0);
        assert_eq!(inj.recovery_count(), 0);
    }

    #[test]
    fn logs_come_back_sorted() {
        let inj = FaultInjector::new(FaultPlan::seeded(1).with_rate(FaultKind::WorkerCrash, 1.0));
        inj.record_injection(site(3));
        inj.record_injection(site(1));
        inj.record_injection(site(2));
        assert_eq!(inj.injected(), vec![site(1), site(2), site(3)]);
        assert_eq!(inj.injected_count(), 3);
    }

    #[test]
    fn recovery_counter_excludes_checkpoints() {
        let inj = FaultInjector::disabled();
        inj.record_recovery(RecoveryEvent {
            action: RecoveryAction::Checkpoint,
            site: None,
            backoff_ms: 0,
        });
        inj.record_recovery(RecoveryEvent {
            action: RecoveryAction::CheckpointRestart,
            site: Some(site(0)),
            backoff_ms: 0,
        });
        assert_eq!(inj.recovery_count(), 1);
        assert_eq!(inj.checkpoint_count(), 1);
        assert_eq!(inj.recoveries().len(), 2);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let inj = std::sync::Arc::new(FaultInjector::disabled());
        std::thread::scope(|s| {
            for w in 0..8u32 {
                let inj = std::sync::Arc::clone(&inj);
                s.spawn(move || {
                    for i in 0..50 {
                        inj.record_injection(site(w * 100 + i));
                    }
                });
            }
        });
        assert_eq!(inj.injected_count(), 400);
        let log = inj.injected();
        assert!(log.windows(2).all(|w| w[0] <= w[1]));
    }
}
