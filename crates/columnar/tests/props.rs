//! Property tests for the column store: compression round-trips, lookup
//! correctness against a naive index, and transitive-closure equivalence
//! with reference BFS.

use graphalytics_columnar::{transitive_closure, Column, EdgeTable};
use graphalytics_core::platform::RunContext;
use graphalytics_graph::{CsrGraph, EdgeListGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn columns_round_trip(values in proptest::collection::vec(any::<u64>(), 0..9000)) {
        let col = Column::from_values(&values);
        prop_assert_eq!(col.len(), values.len());
        let mut out = Vec::new();
        let mut all = Vec::new();
        for b in 0..col.num_blocks() {
            col.block(b, &mut out);
            all.extend_from_slice(&out);
        }
        prop_assert_eq!(all, values);
    }

    #[test]
    fn sorted_columns_round_trip_and_compress(
        mut values in proptest::collection::vec(0u64..1_000_000, 1..9000)
    ) {
        values.sort_unstable();
        let col = Column::from_values(&values);
        let mut scratch = Vec::new();
        // Spot-check point reads.
        for &i in &[0usize, values.len() / 2, values.len() - 1] {
            prop_assert_eq!(col.get(i, &mut scratch), values[i]);
        }
        if values.len() > 4096 {
            prop_assert!(col.compressed_bytes() < col.raw_bytes());
        }
    }

    #[test]
    fn edge_table_lookup_matches_naive(
        raw in proptest::collection::vec((0u64..50, 0u64..50), 0..400),
        probe in 0u64..60,
    ) {
        let table = EdgeTable::from_arcs(raw.clone());
        let mut expected: Vec<u64> = raw
            .iter()
            .filter(|&&(f, _)| f == probe)
            .map(|&(_, t)| t)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        let mut out = Vec::new();
        let mut scratch = Default::default();
        let found = table.outbound(probe, &mut out, &mut scratch);
        prop_assert_eq!(found, expected.len());
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn transitive_closure_equals_reference_bfs(
        raw in proptest::collection::vec((0u64..40, 0u64..40), 1..200),
        source in 0u64..40,
        threads in 1usize..5,
    ) {
        // Build an undirected graph; the table stores both arc directions.
        let el = EdgeListGraph::undirected_from_edges(raw);
        let csr = CsrGraph::from_edge_list(&el);
        let Some(src_internal) = csr.internal_id(source) else {
            return Ok(()); // Source not in the vertex set: nothing to compare.
        };
        let mut arcs = Vec::new();
        for v in 0..csr.num_vertices() as u32 {
            for &u in csr.neighbors(v) {
                arcs.push((csr.external_id(v), csr.external_id(u)));
            }
        }
        let table = EdgeTable::from_arcs(arcs);
        let (profile, depths) =
            transitive_closure(&table, source, threads, &RunContext::unbounded()).unwrap();
        let expected = graphalytics_algos::bfs::bfs(&csr, source);
        let reachable_expected = expected.iter().filter(|&&d| d >= 0).count();
        prop_assert_eq!(profile.reachable, reachable_expected);
        for (v, d) in depths {
            let internal = csr.internal_id(v).expect("reached vertex exists");
            prop_assert_eq!(expected[internal as usize], d, "vertex {}", v);
        }
        let _ = src_internal;
    }
}
