//! The Virtuoso platform adapter and SQL entry point.
//!
//! The paper evaluates Virtuoso on BFS only ("we use the OpenLink Virtuoso
//! column store to experiment with performance dynamics of BFS graph
//! traversal in a DBMS", §3.4); the adapter implements BFS via the
//! transitive operator, plus the LDBC SSSP and LCC kernels as driver-side
//! queries over the same table, and reports every other kernel as
//! unsupported — exercising the harness's unsupported-workload path.

use graphalytics_algos::{Algorithm, Output};
use graphalytics_core::platform::{GraphHandle, Platform, PlatformError, RunContext};
use graphalytics_graph::{CsrGraph, Vid};
use rustc_hash::FxHashMap;

use crate::analytics;
use crate::sql::{parse_transitive_count, SqlError};
use crate::table::EdgeTable;
use crate::transitive::{transitive_closure, TransitiveProfile};

/// Virtuoso platform configuration.
#[derive(Debug, Clone)]
pub struct VirtuosoConfig {
    /// Intra-query parallelism (partition threads).
    pub threads: usize,
}

impl Default for VirtuosoConfig {
    fn default() -> Self {
        Self { threads: 4 }
    }
}

struct LoadedGraph {
    table: EdgeTable,
    external_ids: Vec<u64>,
    num_vertices: usize,
}

/// Virtuoso stand-in: a compressed column store whose graph traversal runs
/// as a partitioned transitive SQL operator.
pub struct VirtuosoPlatform {
    config: VirtuosoConfig,
    graphs: FxHashMap<u64, LoadedGraph>,
    next_handle: u64,
    /// Profile of the last transitive run, for the §3.4 report.
    last_profile: Option<TransitiveProfile>,
}

impl VirtuosoPlatform {
    /// Creates the platform.
    pub fn new(config: VirtuosoConfig) -> Self {
        Self {
            config,
            graphs: FxHashMap::default(),
            next_handle: 0,
            last_profile: None,
        }
    }

    /// Default configuration.
    pub fn with_defaults() -> Self {
        Self::new(VirtuosoConfig::default())
    }

    fn loaded(&self, handle: GraphHandle) -> Result<&LoadedGraph, PlatformError> {
        self.graphs
            .get(&handle.0)
            .ok_or(PlatformError::InvalidHandle)
    }

    /// Profile of the most recent transitive execution.
    pub fn last_profile(&self) -> Option<&TransitiveProfile> {
        self.last_profile.as_ref()
    }

    /// Executes a §3.4-style transitive count query against a loaded graph.
    /// Returns `(reachable_count, profile)`.
    pub fn execute_sql(
        &mut self,
        handle: GraphHandle,
        sql: &str,
        ctx: &RunContext,
    ) -> Result<(usize, TransitiveProfile), PlatformError> {
        let query = parse_transitive_count(sql)
            .map_err(|e: SqlError| PlatformError::Unsupported(e.to_string()))?;
        if query.table != "sp_edge" {
            return Err(PlatformError::Unsupported(format!(
                "unknown table {}",
                query.table
            )));
        }
        let loaded = self.loaded(handle)?;
        let (profile, _depths) =
            transitive_closure(&loaded.table, query.source, self.config.threads, ctx)?;
        let count = profile.reachable;
        self.last_profile = Some(profile.clone());
        Ok((count, profile))
    }
}

impl Platform for VirtuosoPlatform {
    fn name(&self) -> &'static str {
        "Virtuoso"
    }

    fn load_graph(&mut self, graph: &CsrGraph) -> Result<GraphHandle, PlatformError> {
        // ETL: bulk-load the arcs into the sorted, compressed edge table,
        // keyed by *internal* ids so outputs align with the canonical graph.
        let mut arcs = Vec::with_capacity(graph.num_arcs());
        for v in 0..graph.num_vertices() as Vid {
            for (&u, &w) in graph.neighbors(v).iter().zip(graph.neighbor_weights(v)) {
                arcs.push((v as u64, u as u64, w));
            }
        }
        let handle = GraphHandle(self.next_handle);
        self.next_handle += 1;
        self.graphs.insert(
            handle.0,
            LoadedGraph {
                table: EdgeTable::from_weighted_arcs(arcs),
                external_ids: (0..graph.num_vertices() as Vid)
                    .map(|v| graph.external_id(v))
                    .collect(),
                num_vertices: graph.num_vertices(),
            },
        );
        Ok(handle)
    }

    fn run(
        &mut self,
        handle: GraphHandle,
        algorithm: &Algorithm,
        ctx: &RunContext,
    ) -> Result<Output, PlatformError> {
        match algorithm {
            Algorithm::Bfs { source } => {
                let loaded = self.loaded(handle)?;
                let n = loaded.num_vertices;
                let source_internal = loaded.external_ids.iter().position(|&e| e == *source);
                let mut depths = vec![-1i64; n];
                let Some(src) = source_internal else {
                    return Ok(Output::Depths(depths));
                };
                let (profile, records) =
                    transitive_closure(&loaded.table, src as u64, self.config.threads, ctx)?;
                for (v, d) in records {
                    if (v as usize) < n {
                        depths[v as usize] = d;
                    }
                }
                self.last_profile = Some(profile);
                Ok(Output::Depths(depths))
            }
            Algorithm::Sssp { source } => {
                let loaded = self.loaded(handle)?;
                let source = loaded
                    .external_ids
                    .iter()
                    .position(|&e| e == *source)
                    .map(|i| i as u64);
                Ok(Output::Distances(analytics::sssp(
                    &loaded.table,
                    loaded.num_vertices,
                    source,
                    ctx,
                )?))
            }
            Algorithm::Lcc => {
                let loaded = self.loaded(handle)?;
                Ok(Output::LocalClustering(analytics::local_clustering(
                    &loaded.table,
                    loaded.num_vertices,
                    ctx,
                )?))
            }
            other => Err(PlatformError::Unsupported(format!(
                "{} (Virtuoso's Graphalytics driver implements BFS, SSSP, and LCC only)",
                other.name()
            ))),
        }
    }

    fn unload(&mut self, handle: GraphHandle) {
        self.graphs.remove(&handle.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphalytics_algos::reference;
    use graphalytics_graph::EdgeListGraph;
    use std::sync::Arc;

    fn test_graph() -> Arc<CsrGraph> {
        Arc::new(CsrGraph::from_edge_list(
            &EdgeListGraph::undirected_from_edges(vec![(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]),
        ))
    }

    #[test]
    fn bfs_matches_reference() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let alg = Algorithm::Bfs { source: 0 };
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&g, &alg).equivalent(&out), "{out:?}");
        assert!(p.last_profile().is_some());
    }

    #[test]
    fn sssp_validates_on_weighted_graph() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = Arc::new(CsrGraph::from_edge_list(&EdgeListGraph::new_weighted(
            Vec::new(),
            vec![
                (0, 1, 2_000_000),
                (1, 2, 500_000),
                (0, 2, 4_000_000),
                (2, 3, 1_500_000),
                (4, 5, 1_000_000),
            ],
            false,
        )));
        let handle = p.load_graph(&g).unwrap();
        let alg = Algorithm::Sssp { source: 0 };
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&g, &alg).equivalent(&out), "{out:?}");
    }

    #[test]
    fn sssp_missing_source_leaves_all_unreachable() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let alg = Algorithm::Sssp { source: 777 };
        let out = p.run(handle, &alg, &RunContext::unbounded()).unwrap();
        assert!(reference(&g, &alg).equivalent(&out), "{out:?}");
    }

    #[test]
    fn lcc_matches_reference() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let out = p
            .run(handle, &Algorithm::Lcc, &RunContext::unbounded())
            .unwrap();
        assert!(reference(&g, &Algorithm::Lcc).equivalent(&out), "{out:?}");
    }

    #[test]
    fn non_bfs_kernels_are_unsupported() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        for alg in [Algorithm::Stats, Algorithm::Conn, Algorithm::default_cd()] {
            let err = p.run(handle, &alg, &RunContext::unbounded()).unwrap_err();
            assert!(matches!(err, PlatformError::Unsupported(_)), "{alg:?}");
        }
    }

    #[test]
    fn sql_entry_point_counts_reachable() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let sql = "select count (*) from (select spe_to from \
            (select transitive t_in (1) t_out (2) t_distinct \
            spe_from, spe_to from sp_edge) dt1 where spe_from = 0) dt2;";
        let (count, profile) = p
            .execute_sql(handle, sql, &RunContext::unbounded())
            .unwrap();
        assert_eq!(count, 4); // {0, 1, 2, 3}.
        assert!(profile.random_lookups >= 4);
        assert!(profile.endpoints_visited > 0);
    }

    #[test]
    fn bad_sql_is_reported() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let err = p
            .execute_sql(handle, "select 1", &RunContext::unbounded())
            .unwrap_err();
        assert!(matches!(err, PlatformError::Unsupported(_)));
    }

    #[test]
    fn missing_bfs_source_yields_all_unreachable() {
        let mut p = VirtuosoPlatform::with_defaults();
        let g = test_graph();
        let handle = p.load_graph(&g).unwrap();
        let out = p
            .run(
                handle,
                &Algorithm::Bfs { source: 777 },
                &RunContext::unbounded(),
            )
            .unwrap();
        assert_eq!(out, Output::Depths(vec![-1; 6]));
    }
}
