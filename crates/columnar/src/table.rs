//! The `sp_edge` table: a compressed, sorted columnar edge table with a
//! block-sparse index for outbound-edge lookups.
//!
//! §3.4's query profile counts "random lookups (getting the outbound edges
//! of a vertex)" — here a lookup binary-searches the block index on
//! `spe_from`, decompresses the covering block(s), and scans the matching
//! run, returning the `spe_to` values.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::column::{Column, BLOCK};

/// An edge table sorted by `(spe_from, spe_to)` with a fixed-point weight
/// column (`spe_weight`).
pub struct EdgeTable {
    spe_from: Column,
    spe_to: Column,
    spe_weight: Column,
    /// Block index: first `spe_from` value of every block.
    block_first: Vec<u64>,
    /// Random lookups served (the §3.4 counter).
    lookups: AtomicUsize,
    num_rows: usize,
    /// Unique table identity; invalidates scratch caches that were filled
    /// from a different table.
    epoch: u64,
}

fn next_table_epoch() -> u64 {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed) as u64
}

impl EdgeTable {
    /// Builds the table from unweighted arcs; every row gets weight zero.
    pub fn from_arcs(arcs: Vec<(u64, u64)>) -> Self {
        Self::from_weighted_arcs(arcs.into_iter().map(|(f, t)| (f, t, 0)).collect())
    }

    /// Builds the table from weighted arcs; sorts them into `(from, to)`
    /// order. Duplicate `(from, to)` rows collapse to the smallest weight.
    pub fn from_weighted_arcs(mut arcs: Vec<(u64, u64, u64)>) -> Self {
        arcs.sort_unstable();
        arcs.dedup_by_key(|&mut (f, t, _)| (f, t));
        let mut spe_from = Column::new();
        let mut spe_to = Column::new();
        let mut spe_weight = Column::new();
        for &(f, t, w) in &arcs {
            spe_from.push(f);
            spe_to.push(t);
            spe_weight.push(w);
        }
        spe_from.seal();
        spe_to.seal();
        spe_weight.seal();
        let mut block_first = Vec::with_capacity(spe_from.num_blocks());
        let mut scratch = Vec::new();
        for b in 0..spe_from.num_blocks() {
            spe_from.block(b, &mut scratch);
            block_first.push(scratch.first().copied().unwrap_or(u64::MAX));
        }
        Self {
            spe_from,
            spe_to,
            spe_weight,
            block_first,
            lookups: AtomicUsize::new(0),
            num_rows: arcs.len(),
            epoch: next_table_epoch(),
        }
    }

    /// Number of rows (arcs).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Compressed size of all columns.
    pub fn compressed_bytes(&self) -> usize {
        self.spe_from.compressed_bytes()
            + self.spe_to.compressed_bytes()
            + self.spe_weight.compressed_bytes()
    }

    /// Uncompressed size of all columns.
    pub fn raw_bytes(&self) -> usize {
        self.spe_from.raw_bytes() + self.spe_to.raw_bytes() + self.spe_weight.raw_bytes()
    }

    /// Random lookups served since construction.
    pub fn lookup_count(&self) -> usize {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Appends the outbound targets of `vertex` to `out`; returns how many
    /// were found. One call = one "random lookup".
    ///
    /// Decompression is vectored: the scratch caches the last decoded
    /// block, so a *sorted* batch of lookups (as the transitive operator's
    /// borders are) decompresses each block once — Virtuoso's
    /// vectored-execution behavior.
    pub fn outbound(&self, vertex: u64, out: &mut Vec<u64>, scratch: &mut LookupScratch) -> usize {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        // Find the first block that could contain `vertex`'s run: the run
        // may span several blocks whose first value *equals* `vertex`, so
        // search with strict `<` and step one back.
        let mut b = self.block_first.partition_point(|&f| f < vertex);
        b = b.saturating_sub(1);
        let mut found = 0usize;
        while b < self.spe_from.num_blocks() {
            if self.block_first[b] > vertex {
                break;
            }
            if scratch.cached_block != Some(b) || scratch.cached_epoch != self.epoch {
                self.spe_from.block(b, &mut scratch.from);
                self.spe_to.block(b, &mut scratch.to);
                scratch.cached_block = Some(b);
                scratch.cached_epoch = self.epoch;
            }
            // Binary search the run inside the decompressed block.
            let lo = scratch.from.partition_point(|&f| f < vertex);
            let hi = scratch.from.partition_point(|&f| f <= vertex);
            if lo < hi {
                out.extend_from_slice(&scratch.to[lo..hi]);
                found += hi - lo;
            }
            if hi < scratch.from.len() {
                break; // Run ended inside this block.
            }
            b += 1;
        }
        found
    }

    /// Like [`outbound`](Self::outbound), but appends `(target, weight)`
    /// pairs — the three-column variant backing weighted traversals. The
    /// weight block is decompressed lazily under its own cache key, so
    /// plain BFS lookups never pay for the weight column.
    pub fn outbound_weighted(
        &self,
        vertex: u64,
        out: &mut Vec<(u64, u64)>,
        scratch: &mut LookupScratch,
    ) -> usize {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut b = self.block_first.partition_point(|&f| f < vertex);
        b = b.saturating_sub(1);
        let mut found = 0usize;
        while b < self.spe_from.num_blocks() {
            if self.block_first[b] > vertex {
                break;
            }
            if scratch.cached_block != Some(b) || scratch.cached_epoch != self.epoch {
                self.spe_from.block(b, &mut scratch.from);
                self.spe_to.block(b, &mut scratch.to);
                scratch.cached_block = Some(b);
                scratch.cached_epoch = self.epoch;
            }
            if scratch.cached_weight_block != Some(b) || scratch.cached_weight_epoch != self.epoch {
                self.spe_weight.block(b, &mut scratch.weight);
                scratch.cached_weight_block = Some(b);
                scratch.cached_weight_epoch = self.epoch;
            }
            let lo = scratch.from.partition_point(|&f| f < vertex);
            let hi = scratch.from.partition_point(|&f| f <= vertex);
            if lo < hi {
                out.extend(
                    scratch.to[lo..hi]
                        .iter()
                        .copied()
                        .zip(scratch.weight[lo..hi].iter().copied()),
                );
                found += hi - lo;
            }
            if hi < scratch.from.len() {
                break;
            }
            b += 1;
        }
        found
    }

    /// Full-scan iterator over `(from, to)` rows, block at a time, calling
    /// `f` per block with parallel slices.
    pub fn scan(&self, mut f: impl FnMut(&[u64], &[u64])) {
        let mut from = Vec::with_capacity(BLOCK);
        let mut to = Vec::with_capacity(BLOCK);
        for b in 0..self.spe_from.num_blocks() {
            self.spe_from.block(b, &mut from);
            self.spe_to.block(b, &mut to);
            f(&from, &to);
        }
    }
}

/// Reusable decompression buffers for lookups, with a one-block cache.
/// Safe to reuse across tables: the cache is keyed by table identity.
#[derive(Debug, Default)]
pub struct LookupScratch {
    from: Vec<u64>,
    to: Vec<u64>,
    weight: Vec<u64>,
    cached_block: Option<usize>,
    cached_epoch: u64,
    /// The weight column caches independently: unweighted lookups skip it,
    /// so its freshness can lag the from/to cache.
    cached_weight_block: Option<usize>,
    cached_weight_epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EdgeTable {
        // Vertex i -> i+1..i+4 for i in 0..3000 (runs crossing blocks).
        let mut arcs = Vec::new();
        for i in 0..3000u64 {
            for j in 1..=4 {
                arcs.push((i, i + j));
            }
        }
        EdgeTable::from_arcs(arcs)
    }

    #[test]
    fn outbound_returns_sorted_run() {
        let t = table();
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        let found = t.outbound(100, &mut out, &mut scratch);
        assert_eq!(found, 4);
        assert_eq!(out, vec![101, 102, 103, 104]);
    }

    #[test]
    fn missing_vertex_finds_nothing() {
        let t = table();
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        assert_eq!(t.outbound(1_000_000, &mut out, &mut scratch), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn lookup_counter_increments() {
        let t = table();
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        t.outbound(0, &mut out, &mut scratch);
        t.outbound(1, &mut out, &mut scratch);
        assert_eq!(t.lookup_count(), 2);
    }

    #[test]
    fn runs_crossing_block_boundaries() {
        // One hub with BLOCK + 100 targets spans blocks.
        let mut arcs: Vec<(u64, u64)> = (0..(BLOCK as u64 + 100)).map(|j| (5, 10 + j)).collect();
        arcs.push((6, 1));
        let t = EdgeTable::from_arcs(arcs);
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        let found = t.outbound(5, &mut out, &mut scratch);
        assert_eq!(found, BLOCK + 100);
        assert_eq!(out[0], 10);
        assert_eq!(*out.last().unwrap(), 10 + BLOCK as u64 + 99);
        out.clear();
        assert_eq!(t.outbound(6, &mut out, &mut scratch), 1);
    }

    #[test]
    fn dedup_and_sort_on_build() {
        let t = EdgeTable::from_arcs(vec![(2, 1), (1, 5), (2, 1), (1, 3)]);
        assert_eq!(t.num_rows(), 3);
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        t.outbound(1, &mut out, &mut scratch);
        assert_eq!(out, vec![3, 5]);
    }

    #[test]
    fn weighted_lookup_returns_weights_in_run_order() {
        let t = EdgeTable::from_weighted_arcs(vec![(1, 5, 70), (1, 3, 30), (2, 1, 10)]);
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        assert_eq!(t.outbound_weighted(1, &mut out, &mut scratch), 2);
        assert_eq!(out, vec![(3, 30), (5, 70)]);
    }

    #[test]
    fn duplicate_weighted_arcs_keep_min_weight() {
        let t = EdgeTable::from_weighted_arcs(vec![(1, 3, 50), (1, 3, 20), (1, 3, 90)]);
        assert_eq!(t.num_rows(), 1);
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        t.outbound_weighted(1, &mut out, &mut scratch);
        assert_eq!(out, vec![(3, 20)]);
    }

    #[test]
    fn weighted_run_crossing_blocks_keeps_alignment() {
        let mut arcs: Vec<(u64, u64, u64)> = (0..(BLOCK as u64 + 100))
            .map(|j| (5, 10 + j, 1000 + j))
            .collect();
        arcs.push((6, 1, 7));
        let t = EdgeTable::from_weighted_arcs(arcs);
        let mut out = Vec::new();
        let mut scratch = LookupScratch::default();
        assert_eq!(t.outbound_weighted(5, &mut out, &mut scratch), BLOCK + 100);
        assert_eq!(out[0], (10, 1000));
        assert_eq!(
            *out.last().unwrap(),
            (10 + BLOCK as u64 + 99, 1000 + BLOCK as u64 + 99)
        );
        out.clear();
        assert_eq!(t.outbound_weighted(6, &mut out, &mut scratch), 1);
        assert_eq!(out, vec![(1, 7)]);
    }

    #[test]
    fn weight_cache_does_not_leak_across_tables() {
        // Same block index in two tables: the scratch must not serve table
        // A's weights for table B, even when only the weight cache is stale.
        let a = EdgeTable::from_weighted_arcs(vec![(0, 1, 111)]);
        let b = EdgeTable::from_weighted_arcs(vec![(0, 1, 222)]);
        let mut scratch = LookupScratch::default();
        let mut out = Vec::new();
        a.outbound_weighted(0, &mut out, &mut scratch);
        assert_eq!(out, vec![(1, 111)]);
        // Refresh only the from/to cache on table B via a plain lookup...
        let mut targets = Vec::new();
        b.outbound(0, &mut targets, &mut scratch);
        // ...then the weighted lookup must still reload B's weight block.
        out.clear();
        b.outbound_weighted(0, &mut out, &mut scratch);
        assert_eq!(out, vec![(1, 222)]);
    }

    #[test]
    fn compression_beats_raw_on_sorted_edges() {
        let t = table();
        assert!(t.compressed_bytes() < t.raw_bytes() / 2);
    }

    #[test]
    fn scan_covers_all_rows() {
        let t = table();
        let mut rows = 0usize;
        t.scan(|from, to| {
            assert_eq!(from.len(), to.len());
            rows += from.len();
        });
        assert_eq!(rows, t.num_rows());
    }
}
