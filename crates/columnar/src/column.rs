//! Compressed columns with vectored (block-at-a-time) access.
//!
//! "Virtuoso features column-wise compression, vectored execution, and
//! intra-query parallelism" (paper §3.4). Columns here store u64 values in
//! blocks of [`BLOCK`] values; each block picks the cheapest of three
//! encodings at append time:
//!
//! * **FOR bit-packing** — frame of reference (block minimum) plus
//!   fixed-width packed offsets;
//! * **Delta bit-packing** — first value plus packed deltas (wins on
//!   sorted runs such as the edge table's `spe_from` column);
//! * **Plain** — raw little-endian u64s when packing would not help.
//!
//! Reads are vectored: [`Column::block`] decompresses a whole block into a
//! caller-provided buffer, and random point reads go through the same
//! path (decompress + index), which is what makes the §3.4 CPU profile's
//! "column store random access and decompression" share real.

/// Values per block.
pub const BLOCK: usize = 4096;

/// One encoded block.
#[derive(Debug, Clone)]
enum Encoded {
    /// Raw values.
    Plain(Vec<u64>),
    /// Frame-of-reference: `base` + `width`-bit packed offsets.
    For {
        base: u64,
        width: u8,
        len: u32,
        packed: Vec<u64>,
    },
    /// Delta: `first` + `width`-bit packed (delta - min_delta) values,
    /// only for non-decreasing runs (min_delta folded into base).
    Delta {
        first: u64,
        min_delta: u64,
        width: u8,
        len: u32,
        packed: Vec<u64>,
    },
}

/// A compressed append-only u64 column.
#[derive(Debug, Clone, Default)]
pub struct Column {
    blocks: Vec<Encoded>,
    /// Spill buffer of not-yet-encoded values.
    tail: Vec<u64>,
    len: usize,
}

fn bits_for(max: u64) -> u8 {
    (64 - max.leading_zeros()).max(1) as u8
}

fn pack(values: impl Iterator<Item = u64>, width: u8, len: usize) -> Vec<u64> {
    let total_bits = width as usize * len;
    let mut packed = vec![0u64; total_bits.div_ceil(64)];
    let mut bit = 0usize;
    for v in values {
        let word = bit / 64;
        let offset = bit % 64;
        packed[word] |= v << offset;
        let spill = 64 - offset;
        if (width as usize) > spill {
            packed[word + 1] |= v >> spill;
        }
        bit += width as usize;
    }
    packed
}

fn unpack(packed: &[u64], width: u8, len: usize, out: &mut Vec<u64>) {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut bit = 0usize;
    for _ in 0..len {
        let word = bit / 64;
        let offset = bit % 64;
        let mut v = packed[word] >> offset;
        let spill = 64 - offset;
        if (width as usize) > spill {
            v |= packed[word + 1] << spill;
        }
        out.push(v & mask);
        bit += width as usize;
    }
}

impl Encoded {
    fn from_values(values: &[u64]) -> Encoded {
        let len = values.len();
        debug_assert!(len > 0);
        // Panic-free min/max: blocks are non-empty by construction, and the
        // saturating_sub below keeps the (unreachable) empty case harmless.
        let (min, max) = values
            .iter()
            .fold((u64::MAX, 0u64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let for_width = bits_for(max.saturating_sub(min));
        let for_bits = for_width as usize * len;
        // Delta applies only to non-decreasing runs.
        let sorted = values.windows(2).all(|w| w[0] <= w[1]);
        let (delta_width, delta_min) = if sorted && len > 1 {
            let mut min_d = u64::MAX;
            let mut max_d = 0u64;
            for w in values.windows(2) {
                let d = w[1] - w[0];
                min_d = min_d.min(d);
                max_d = max_d.max(d);
            }
            (bits_for(max_d - min_d), min_d)
        } else {
            (64, 0)
        };
        let delta_bits = delta_width as usize * (len - 1);
        let plain_bits = 64 * len;
        if sorted && len > 1 && delta_bits <= for_bits && delta_bits < plain_bits {
            Encoded::Delta {
                first: values[0],
                min_delta: delta_min,
                width: delta_width,
                len: len as u32,
                packed: pack(
                    values.windows(2).map(|w| (w[1] - w[0]) - delta_min),
                    delta_width,
                    len - 1,
                ),
            }
        } else if for_bits < plain_bits {
            Encoded::For {
                base: min,
                width: for_width,
                len: len as u32,
                packed: pack(values.iter().map(|&v| v - min), for_width, len),
            }
        } else {
            Encoded::Plain(values.to_vec())
        }
    }

    fn decode(&self, out: &mut Vec<u64>) {
        out.clear();
        match self {
            Encoded::Plain(values) => out.extend_from_slice(values),
            Encoded::For {
                base,
                width,
                len,
                packed,
            } => {
                unpack(packed, *width, *len as usize, out);
                for v in out.iter_mut() {
                    *v += base;
                }
            }
            Encoded::Delta {
                first,
                min_delta,
                width,
                len,
                packed,
            } => {
                out.push(*first);
                let mut deltas = Vec::with_capacity(*len as usize - 1);
                unpack(packed, *width, *len as usize - 1, &mut deltas);
                let mut current = *first;
                for d in deltas {
                    current += d + min_delta;
                    out.push(current);
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Encoded::Plain(v) => v.len(),
            Encoded::For { len, .. } | Encoded::Delta { len, .. } => *len as usize,
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Encoded::Plain(v) => v.len() * 8,
            Encoded::For { packed, .. } => packed.len() * 8 + 16,
            Encoded::Delta { packed, .. } => packed.len() * 8 + 24,
        }
    }
}

impl Column {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a column from a slice.
    pub fn from_values(values: &[u64]) -> Self {
        let mut c = Self::new();
        for &v in values {
            c.push(v);
        }
        c.seal();
        c
    }

    /// Appends one value.
    pub fn push(&mut self, value: u64) {
        self.tail.push(value);
        self.len += 1;
        if self.tail.len() == BLOCK {
            let block = Encoded::from_values(&self.tail);
            self.tail.clear();
            self.blocks.push(block);
        }
    }

    /// Flushes the tail into a final (possibly short) block.
    pub fn seal(&mut self) {
        if !self.tail.is_empty() {
            let block = Encoded::from_values(&self.tail);
            self.tail.clear();
            self.blocks.push(block);
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len() + usize::from(!self.tail.is_empty())
    }

    /// Decompresses block `b` into `out` (vectored read).
    pub fn block(&self, b: usize, out: &mut Vec<u64>) {
        if b < self.blocks.len() {
            self.blocks[b].decode(out);
        } else {
            out.clear();
            out.extend_from_slice(&self.tail);
        }
    }

    /// Length of block `b`.
    pub fn block_len(&self, b: usize) -> usize {
        if b < self.blocks.len() {
            self.blocks[b].len()
        } else {
            self.tail.len()
        }
    }

    /// Point read (decompress + index); prefer [`Column::block`] in loops.
    pub fn get(&self, index: usize, scratch: &mut Vec<u64>) -> u64 {
        let b = index / BLOCK;
        self.block(b, scratch);
        scratch[index % BLOCK]
    }

    /// Compressed size in bytes (tail counted raw).
    pub fn compressed_bytes(&self) -> usize {
        self.blocks.iter().map(Encoded::bytes).sum::<usize>() + self.tail.len() * 8
    }

    /// Uncompressed size in bytes.
    pub fn raw_bytes(&self) -> usize {
        self.len * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64]) {
        let c = Column::from_values(values);
        assert_eq!(c.len(), values.len());
        let mut out = Vec::new();
        let mut all = Vec::new();
        for b in 0..c.num_blocks() {
            c.block(b, &mut out);
            all.extend_from_slice(&out);
        }
        assert_eq!(all, values);
    }

    #[test]
    fn round_trips_various_shapes() {
        round_trip(&[]);
        round_trip(&[42]);
        round_trip(&(0..10_000).collect::<Vec<u64>>()); // Sorted → delta.
        round_trip(&(0..10_000).map(|i| i * 37 % 1000).collect::<Vec<u64>>()); // FOR.
        round_trip(
            &(0..5000u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
                .collect::<Vec<u64>>(),
        ); // Plain-ish.
        round_trip(&vec![7u64; 9000]); // Constant.
    }

    #[test]
    fn sorted_data_compresses_well() {
        let values: Vec<u64> = (0..100_000u64).collect();
        let c = Column::from_values(&values);
        assert!(
            c.compressed_bytes() < c.raw_bytes() / 10,
            "compressed={} raw={}",
            c.compressed_bytes(),
            c.raw_bytes()
        );
    }

    #[test]
    fn small_range_data_bitpacks() {
        let values: Vec<u64> = (0..50_000).map(|i| 1_000_000 + (i % 16)).collect();
        let c = Column::from_values(&values);
        // 4 bits/value (plus headers) vs 64 bits/value raw.
        assert!(c.compressed_bytes() < c.raw_bytes() / 8);
    }

    #[test]
    fn random_data_does_not_explode() {
        let values: Vec<u64> = (0..20_000)
            .map(|i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let c = Column::from_values(&values);
        assert!(c.compressed_bytes() <= c.raw_bytes() + c.num_blocks() * 32);
    }

    #[test]
    fn point_reads() {
        let values: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        let c = Column::from_values(&values);
        let mut scratch = Vec::new();
        assert_eq!(c.get(0, &mut scratch), 0);
        assert_eq!(c.get(4095, &mut scratch), 4095 * 3);
        assert_eq!(c.get(4096, &mut scratch), 4096 * 3);
        assert_eq!(c.get(9999, &mut scratch), 9999 * 3);
    }

    #[test]
    fn unsealed_tail_is_readable() {
        let mut c = Column::new();
        c.push(1);
        c.push(2);
        let mut out = Vec::new();
        c.block(0, &mut out);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(c.num_blocks(), 1);
    }

    #[test]
    fn width_64_edge_case() {
        round_trip(&[0, u64::MAX, 1, u64::MAX - 1, 0, 5]);
    }
}
