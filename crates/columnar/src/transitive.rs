//! The transitive traversal operator (paper §3.4).
//!
//! "The state of the computation is kept in a partitioned hash table, with
//! one thread reading/writing each partition, with an exchange operator
//! between the lookup of outbound edges and the recording of the new
//! border, as the source and target of any edge most often fall in a
//! different partition."
//!
//! The operator runs breadth-first rounds; each round every partition
//! thread (a) looks up the outbound edges of its border vertices in the
//! compressed edge table, (b) routes the targets through the exchange to
//! their owning partition, and (c) each partition records unseen targets
//! in its hash table, forming the next border. The three phases are timed
//! separately so the run reproduces §3.4's CPU profile (hash table vs
//! exchange vs column access shares).

use std::time::Instant;

use graphalytics_core::faults::{fingerprint, FaultSite, RecoveryAction};
use graphalytics_core::platform::{PlatformError, RunContext};
use graphalytics_graph::partition::mix64;
use rustc_hash::FxHashSet;

use crate::table::{EdgeTable, LookupScratch};

/// Execution profile of one transitive run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransitiveProfile {
    /// Vertices reachable from the source (including the source).
    pub reachable: usize,
    /// Random lookups (outbound-edge fetches).
    pub random_lookups: usize,
    /// Edge end points visited (targets produced before dedup).
    pub endpoints_visited: usize,
    /// Breadth-first rounds executed.
    pub rounds: usize,
    /// CPU seconds in the border hash table (summed over threads).
    pub hash_seconds: f64,
    /// CPU seconds in the exchange operator.
    pub exchange_seconds: f64,
    /// CPU seconds in column access and decompression.
    pub column_seconds: f64,
    /// Wall-clock seconds for the whole operator.
    pub wall_seconds: f64,
}

impl TransitiveProfile {
    /// Million traversed edges per second (the §3.4 headline metric).
    pub fn mteps(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.endpoints_visited as f64 / self.wall_seconds / 1e6
        }
    }

    /// `(hash, exchange, column)` shares of profiled CPU cycles, in
    /// percent (cf. the paper's 33% / 10% / 57%).
    pub fn cycle_shares(&self) -> (f64, f64, f64) {
        let total = self.hash_seconds + self.exchange_seconds + self.column_seconds;
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.hash_seconds / total,
            100.0 * self.exchange_seconds / total,
            100.0 * self.column_seconds / total,
        )
    }
}

/// Per-vertex depth produced by the traversal (vertex, depth) — the BFS
/// output when the operator backs the platform adapter.
pub type DepthRecord = (u64, i64);

/// Runs the transitive closure from `source` over `table` with `threads`
/// partitions. Returns the profile and the depth records of all reached
/// vertices.
pub fn transitive_closure(
    table: &EdgeTable,
    source: u64,
    threads: usize,
    ctx: &RunContext,
) -> Result<(TransitiveProfile, Vec<DepthRecord>), PlatformError> {
    let p = threads.max(1);
    let mut op_span = ctx.tracer().span("virtuoso.transitive");
    op_span.field("source", source as i64).field("threads", p);
    let wall_start = Instant::now();
    let owner = |v: u64| (mix64(v) % p as u64) as usize;

    // Partitioned state: visited hash tables and depth records.
    let mut visited: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); p];
    let mut depths: Vec<Vec<DepthRecord>> = vec![Vec::new(); p];
    let mut border: Vec<Vec<u64>> = vec![Vec::new(); p];
    let src_part = owner(source);
    visited[src_part].insert(source);
    depths[src_part].push((source, 0));
    border[src_part].push(source);

    let mut profile = TransitiveProfile::default();
    let lookups_before = table.lookup_count();
    let mut depth: i64 = 0;

    // Allocation-failure injection point: each round's exchange buffers
    // are one logical allocation; a transient failure is retried a few
    // times (the operator re-requests the arena) before escalating.
    const MAX_ALLOC_ATTEMPTS: u32 = 3;
    let alloc_scope = fingerprint("virtuoso.transitive");

    while border.iter().any(|b| !b.is_empty()) {
        ctx.check_deadline()?;
        depth += 1;
        profile.rounds += 1;
        if ctx.faults().is_some() {
            let mut attempt = 0u32;
            loop {
                let site = FaultSite::Alloc {
                    scope: alloc_scope,
                    sequence: profile.rounds as u64,
                    attempt,
                };
                match ctx.inject(site.clone()) {
                    Ok(()) => break,
                    Err(e) if attempt + 1 >= MAX_ALLOC_ATTEMPTS => return Err(e),
                    Err(_) => {
                        ctx.note_recovery(RecoveryAction::AllocRetry, Some(site), 0);
                        attempt += 1;
                    }
                }
            }
        }
        let mut round_span = ctx.tracer().span("virtuoso.round");
        round_span
            .field("round", profile.rounds)
            .field("border", border.iter().map(Vec::len).sum::<usize>());
        // Phase a+b (parallel): column lookups, producing per-destination
        // buffers (the exchange's send side).
        struct PartOut {
            outgoing: Vec<Vec<u64>>,
            column_seconds: f64,
            exchange_seconds: f64,
            endpoints: usize,
        }
        let mut outputs: Vec<Option<PartOut>> = (0..p).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (t, (my_border, slot)) in border.iter().zip(outputs.iter_mut()).enumerate() {
                let _ = t;
                scope.spawn(move |_| {
                    let mut scratch = LookupScratch::default();
                    let mut targets = Vec::new();
                    // Vectored execution: a sorted border turns the random
                    // lookups into near-sequential block accesses, letting
                    // the scratch's block cache amortize decompression.
                    let mut my_border = my_border.clone();
                    my_border.sort_unstable();
                    let mut out = PartOut {
                        outgoing: vec![Vec::new(); p],
                        column_seconds: 0.0,
                        exchange_seconds: 0.0,
                        endpoints: 0,
                    };
                    // Chunked timing keeps the Instant overhead out of the
                    // per-phase cycle accounting.
                    for chunk in my_border.chunks(256) {
                        let t0 = Instant::now();
                        targets.clear();
                        for &v in chunk {
                            table.outbound(v, &mut targets, &mut scratch);
                        }
                        out.column_seconds += t0.elapsed().as_secs_f64();
                        out.endpoints += targets.len();
                        let t1 = Instant::now();
                        for &c in &targets {
                            // SAFETY[ee55ed1e]: `out.outgoing` was built as
                            // `vec![Vec::new(); p]`, and `mix64(c) % p` is
                            // always < p, so the index is in bounds. This is
                            // the hottest exchange-routing line; skipping the
                            // bounds check is worth the audit burden.
                            unsafe {
                                out.outgoing
                                    .get_unchecked_mut((mix64(c) % p as u64) as usize)
                            }
                            .push(c);
                        }
                        out.exchange_seconds += t1.elapsed().as_secs_f64();
                    }
                    *slot = Some(out);
                });
            }
        })
        .map_err(|_| PlatformError::Internal("transitive worker panicked".to_string()))?;

        // Exchange receive side: regroup buffers per destination.
        let t_ex = Instant::now();
        let mut incoming: Vec<Vec<u64>> = vec![Vec::new(); p];
        for out in outputs.iter_mut() {
            let Some(out) = out.as_mut() else {
                return Err(PlatformError::Internal(
                    "transitive partition produced no output".to_string(),
                ));
            };
            profile.column_seconds += out.column_seconds;
            profile.exchange_seconds += out.exchange_seconds;
            profile.endpoints_visited += out.endpoints;
            for (dest, buf) in out.outgoing.iter_mut().enumerate() {
                incoming[dest].append(buf);
            }
        }
        profile.exchange_seconds += t_ex.elapsed().as_secs_f64();

        // Phase c (parallel): record the new border in the partition hash
        // tables.
        let mut hash_seconds = vec![0.0f64; p];
        crossbeam::thread::scope(|scope| {
            for (((my_visited, my_depths), (my_border, candidates)), hs) in visited
                .iter_mut()
                .zip(depths.iter_mut())
                .zip(border.iter_mut().zip(incoming))
                .zip(hash_seconds.iter_mut())
            {
                scope.spawn(move |_| {
                    let t0 = Instant::now();
                    my_border.clear();
                    for c in candidates {
                        if my_visited.insert(c) {
                            my_depths.push((c, depth));
                            my_border.push(c);
                        }
                    }
                    *hs = t0.elapsed().as_secs_f64();
                });
            }
        })
        .map_err(|_| PlatformError::Internal("transitive hash worker panicked".to_string()))?;
        profile.hash_seconds += hash_seconds.iter().sum::<f64>();
    }

    profile.random_lookups = table.lookup_count() - lookups_before;
    profile.reachable = visited.iter().map(FxHashSet::len).sum();
    profile.wall_seconds = wall_start.elapsed().as_secs_f64();
    op_span
        .field("reachable", profile.reachable)
        .field("random_lookups", profile.random_lookups)
        .field("endpoints_visited", profile.endpoints_visited)
        .field("rounds", profile.rounds)
        // The column scan streams endpoints in order; each hash probe is
        // a random lookup — the same split the profile already counts.
        .field("seq_accesses", profile.endpoints_visited)
        .field("rand_accesses", profile.random_lookups);
    let mut all_depths: Vec<DepthRecord> = depths.into_iter().flatten().collect();
    all_depths.sort_unstable();
    Ok((profile, all_depths))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_table(n: u64) -> EdgeTable {
        // Bidirectional chain 0-1-...-n.
        let mut arcs = Vec::new();
        for i in 0..n {
            arcs.push((i, i + 1));
            arcs.push((i + 1, i));
        }
        EdgeTable::from_arcs(arcs)
    }

    #[test]
    fn reaches_whole_chain_with_correct_depths() {
        let t = chain_table(50);
        let (profile, depths) = transitive_closure(&t, 0, 4, &RunContext::unbounded()).unwrap();
        assert_eq!(profile.reachable, 51);
        assert_eq!(profile.rounds, 51); // 50 productive + 1 empty-output round.
        let d: std::collections::HashMap<u64, i64> = depths.into_iter().collect();
        assert_eq!(d[&0], 0);
        assert_eq!(d[&25], 25);
        assert_eq!(d[&50], 50);
    }

    #[test]
    fn counts_lookups_and_endpoints() {
        let t = chain_table(10);
        let (profile, _) = transitive_closure(&t, 0, 2, &RunContext::unbounded()).unwrap();
        // Every reached vertex is looked up exactly once.
        assert_eq!(profile.random_lookups, 11);
        // Endpoints: each lookup yields its outbound edges (2 for interior).
        assert_eq!(profile.endpoints_visited, 2 * 10);
        assert!(profile.mteps() > 0.0);
    }

    #[test]
    fn unreachable_parts_stay_unreached() {
        let mut arcs = vec![(0, 1), (1, 0), (5, 6), (6, 5)];
        arcs.sort_unstable();
        let t = EdgeTable::from_arcs(arcs);
        let (profile, depths) = transitive_closure(&t, 0, 3, &RunContext::unbounded()).unwrap();
        assert_eq!(profile.reachable, 2);
        assert_eq!(depths.len(), 2);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let t = chain_table(30);
        let (p1, d1) = transitive_closure(&t, 3, 1, &RunContext::unbounded()).unwrap();
        let (p8, d8) = transitive_closure(&t, 3, 8, &RunContext::unbounded()).unwrap();
        assert_eq!(p1.reachable, p8.reachable);
        assert_eq!(d1, d8);
        assert_eq!(p1.endpoints_visited, p8.endpoints_visited);
    }

    #[test]
    fn cycle_shares_sum_to_hundred() {
        let t = chain_table(200);
        let (profile, _) = transitive_closure(&t, 0, 4, &RunContext::unbounded()).unwrap();
        let (h, e, c) = profile.cycle_shares();
        assert!((h + e + c - 100.0).abs() < 1e-6, "{h} {e} {c}");
        assert!(h >= 0.0 && e >= 0.0 && c >= 0.0);
    }

    #[test]
    fn operator_span_matches_profile() {
        use graphalytics_core::trace::Tracer;
        use std::sync::Arc;

        let t = chain_table(20);
        let tracer = Arc::new(Tracer::new());
        let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
        let (profile, _) = transitive_closure(&t, 0, 2, &ctx).unwrap();

        let spans = tracer.finished_spans();
        let op = spans
            .iter()
            .find(|s| s.name == "virtuoso.transitive")
            .unwrap();
        assert_eq!(
            op.field("reachable").and_then(|f| f.as_i64()),
            Some(profile.reachable as i64)
        );
        assert_eq!(
            op.field("rounds").and_then(|f| f.as_i64()),
            Some(profile.rounds as i64)
        );
        let rounds: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "virtuoso.round")
            .collect();
        assert_eq!(rounds.len(), profile.rounds);
        assert!(rounds.iter().all(|s| s.parent == Some(op.id)));
    }

    #[test]
    fn injected_alloc_failure_retries_then_escalates() {
        use graphalytics_core::faults::{FaultInjector, FaultPlan};
        use std::sync::Arc;

        let t = chain_table(10);
        let baseline = transitive_closure(&t, 0, 2, &RunContext::unbounded()).unwrap();
        let scope = fingerprint("virtuoso.transitive");

        // One transient alloc failure in round 2: retried, result unchanged.
        let plan = FaultPlan::disabled().force(FaultSite::Alloc {
            scope,
            sequence: 2,
            attempt: 0,
        });
        let injector = Arc::new(FaultInjector::new(plan));
        let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
        let (profile, depths) = transitive_closure(&t, 0, 2, &ctx).unwrap();
        assert_eq!(depths, baseline.1);
        assert_eq!(profile.reachable, baseline.0.reachable);
        assert_eq!(injector.injected_count(), 1);
        assert_eq!(injector.recovery_count(), 1);

        // Exhausting the attempt budget escalates as AllocFailed.
        let mut plan = FaultPlan::disabled();
        for attempt in 0..3 {
            plan = plan.force(FaultSite::Alloc {
                scope,
                sequence: 1,
                attempt,
            });
        }
        let injector = Arc::new(FaultInjector::new(plan));
        let ctx = RunContext::unbounded().with_faults(Arc::clone(&injector));
        match transitive_closure(&t, 0, 2, &ctx) {
            Err(PlatformError::AllocFailed { .. }) => {}
            other => panic!("expected AllocFailed, got {other:?}"),
        }
        assert_eq!(injector.injected_count(), 3);
    }

    #[test]
    fn source_not_in_table_is_alone() {
        let t = chain_table(5);
        let (profile, depths) = transitive_closure(&t, 99, 2, &RunContext::unbounded()).unwrap();
        assert_eq!(profile.reachable, 1);
        assert_eq!(depths, vec![(99, 0)]);
    }
}
