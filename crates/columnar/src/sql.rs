//! A parser for the paper's transitive SQL query (§3.4).
//!
//! Virtuoso "offers an SQL extension for transitive traversal"; the paper
//! benchmarks exactly one query shape:
//!
//! ```sql
//! select count (*) from (select spe_to from
//!   (select transitive t_in (1) t_out (2) t_distinct
//!      spe_from, spe_to from sp_edge) derived_table_1
//!   where spe_from = 420) derived_table_2;
//! ```
//!
//! This module parses that shape (tolerantly: case-insensitive keywords,
//! free whitespace, optional aliases and trailing semicolon) into a
//! [`TransitiveQuery`], which the engine executes with the partitioned
//! transitive operator.

/// A parsed transitive-count query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitiveQuery {
    /// The table traversed (`sp_edge`).
    pub table: String,
    /// The traversal source (`spe_from = <source>`).
    pub source: u64,
    /// `t_in` option value.
    pub t_in: u64,
    /// `t_out` option value.
    pub t_out: u64,
    /// Whether `t_distinct` was given.
    pub distinct: bool,
}

/// Parse error with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError(pub String);

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sql parse error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

/// Tokenizer: lowercased identifiers/keywords, numbers, punctuation.
fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_alphanumeric() || c == '_' {
            let mut word = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' {
                    word.push(c.to_ascii_lowercase());
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(word);
        } else {
            tokens.push(c.to_string());
            chars.next();
        }
    }
    tokens
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&str> {
        let t = self.tokens.get(self.pos).map(String::as_str);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t == token => Ok(()),
            Some(t) => Err(SqlError(format!("expected {token:?}, found {t:?}"))),
            None => Err(SqlError(format!("expected {token:?}, found end of input"))),
        }
    }

    fn number(&mut self) -> Result<u64, SqlError> {
        match self.next() {
            Some(t) => t
                .parse()
                .map_err(|_| SqlError(format!("expected a number, found {t:?}"))),
            None => Err(SqlError("expected a number, found end of input".into())),
        }
    }

    fn identifier(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(t)
                if t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_') =>
            {
                Ok(t.to_string())
            }
            Some(t) => Err(SqlError(format!("expected identifier, found {t:?}"))),
            None => Err(SqlError("expected identifier, found end of input".into())),
        }
    }
}

/// Parses the §3.4 query shape.
pub fn parse_transitive_count(input: &str) -> Result<TransitiveQuery, SqlError> {
    let mut p = Parser {
        tokens: tokenize(input),
        pos: 0,
    };
    // select count ( * ) from (
    p.expect("select")?;
    p.expect("count")?;
    p.expect("(")?;
    p.expect("*")?;
    p.expect(")")?;
    p.expect("from")?;
    p.expect("(")?;
    // select spe_to from (
    p.expect("select")?;
    p.expect("spe_to")?;
    p.expect("from")?;
    p.expect("(")?;
    // select transitive [options] spe_from , spe_to from <table>
    p.expect("select")?;
    p.expect("transitive")?;
    let mut t_in = 1u64;
    let mut t_out = 1u64;
    let mut distinct = false;
    loop {
        match p.peek() {
            Some("t_in") => {
                p.next();
                p.expect("(")?;
                t_in = p.number()?;
                p.expect(")")?;
            }
            Some("t_out") => {
                p.next();
                p.expect("(")?;
                t_out = p.number()?;
                p.expect(")")?;
            }
            Some("t_distinct") => {
                p.next();
                distinct = true;
            }
            _ => break,
        }
    }
    p.expect("spe_from")?;
    p.expect(",")?;
    p.expect("spe_to")?;
    p.expect("from")?;
    let table = p.identifier()?;
    p.expect(")")?;
    // Optional alias.
    if matches!(p.peek(), Some(t) if t != "where") {
        p.next();
    }
    // where spe_from = N )
    p.expect("where")?;
    p.expect("spe_from")?;
    p.expect("=")?;
    let source = p.number()?;
    p.expect(")")?;
    // Optional alias + optional semicolon + end.
    if matches!(p.peek(), Some(t) if t != ";") {
        p.next();
    }
    if p.peek() == Some(";") {
        p.next();
    }
    if let Some(extra) = p.peek() {
        return Err(SqlError(format!("unexpected trailing token {extra:?}")));
    }
    Ok(TransitiveQuery {
        table,
        source,
        t_in,
        t_out,
        distinct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_QUERY: &str = "select count (*) from (select spe_to from \
        (select transitive t_in (1) t_out (2) t_distinct \
        spe_from, spe_to from sp_edge) derived_table_1 \
        where spe_from = 420) derived_table_2;";

    #[test]
    fn parses_the_paper_query() {
        let q = parse_transitive_count(PAPER_QUERY).unwrap();
        assert_eq!(
            q,
            TransitiveQuery {
                table: "sp_edge".into(),
                source: 420,
                t_in: 1,
                t_out: 2,
                distinct: true,
            }
        );
    }

    #[test]
    fn case_and_whitespace_insensitive() {
        let q = parse_transitive_count(
            "SELECT COUNT(*) FROM (SELECT spe_to FROM (SELECT TRANSITIVE \
             spe_from,spe_to FROM sp_edge) t WHERE spe_from=7) t2",
        )
        .unwrap();
        assert_eq!(q.source, 7);
        assert!(!q.distinct);
        assert_eq!(q.t_in, 1);
    }

    #[test]
    fn aliases_are_optional() {
        let q = parse_transitive_count(
            "select count (*) from (select spe_to from (select transitive \
             t_distinct spe_from, spe_to from sp_edge) where spe_from = 1)",
        )
        .unwrap();
        assert_eq!(q.source, 1);
        assert!(q.distinct);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_transitive_count("select * from sp_edge").is_err());
        assert!(parse_transitive_count("").is_err());
        let err = parse_transitive_count(
            "select count (*) from (select spe_to from (select transitive \
             spe_from, spe_to from sp_edge) where spe_from = abc)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("number"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let bad = format!("{PAPER_QUERY} order by 1");
        assert!(parse_transitive_count(&bad).is_err());
    }
}
