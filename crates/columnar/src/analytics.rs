//! Driver-side analytics over the compressed edge table, beyond the
//! paper's §3.4 BFS experiment: weighted single-source shortest paths via
//! vectored random lookups on the three-column `sp_edge` table, and local
//! clustering via a full column scan — the style a SQL driver would use
//! (point lookups for the traversal, a table scan for the aggregate).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use graphalytics_algos::INFINITY;
use graphalytics_core::platform::{PlatformError, RunContext};

use crate::table::{EdgeTable, LookupScratch};

/// Vertices processed between deadline checks.
const DEADLINE_STRIDE: usize = 4096;

/// Weighted single-source shortest paths: Dijkstra driven by
/// `outbound_weighted` random lookups. Distances are fixed-point weights;
/// unreached vertices stay at [`INFINITY`].
pub fn sssp(
    table: &EdgeTable,
    num_vertices: usize,
    source: Option<u64>,
    ctx: &RunContext,
) -> Result<Vec<u64>, PlatformError> {
    let mut span = ctx.tracer().span("virtuoso.sssp");
    let lookups_before = table.lookup_count();
    let mut dist = vec![INFINITY; num_vertices];
    let Some(src) = source.filter(|&s| (s as usize) < num_vertices) else {
        span.field("settled", 0usize)
            .field("random_lookups", 0usize);
        return Ok(dist);
    };
    let mut scratch = LookupScratch::default();
    let mut targets: Vec<(u64, u64)> = Vec::new();
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u64, src)));
    let mut settled = 0usize;
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // Lazy deletion: a shorter path already settled `v`.
        }
        settled += 1;
        if settled.is_multiple_of(DEADLINE_STRIDE) {
            ctx.check_deadline()?;
        }
        targets.clear();
        table.outbound_weighted(v, &mut targets, &mut scratch);
        for &(u, w) in &targets {
            let nd = d.saturating_add(w);
            if (u as usize) < num_vertices && nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    span.field("settled", settled)
        .field("random_lookups", table.lookup_count() - lookups_before);
    Ok(dist)
}

/// Local clustering coefficient per vertex: one full scan projects the
/// (already sorted, dedup'd) adjacency lists out of the column store, then
/// sorted-merge intersections count the edges among each neighborhood.
/// Degree-<2 vertices score 0.
pub fn local_clustering(
    table: &EdgeTable,
    num_vertices: usize,
    ctx: &RunContext,
) -> Result<Vec<f64>, PlatformError> {
    let mut span = ctx.tracer().span("virtuoso.lcc");
    span.field("rows", table.num_rows());
    let mut adjacency: Vec<Vec<u64>> = vec![Vec::new(); num_vertices];
    table.scan(|from, to| {
        for (&f, &t) in from.iter().zip(to) {
            if (f as usize) < num_vertices {
                adjacency[f as usize].push(t);
            }
        }
    });
    let mut coefficients = vec![0.0f64; num_vertices];
    for (v, list) in adjacency.iter().enumerate() {
        if v.is_multiple_of(DEADLINE_STRIDE) {
            ctx.check_deadline()?;
        }
        let d = list.len();
        if d < 2 {
            continue;
        }
        // Each edge among neighbors is discovered from both endpoints.
        let mut tri = 0usize;
        for &u in list {
            if (u as usize) < num_vertices {
                tri += sorted_intersection(list, &adjacency[u as usize]);
            }
        }
        tri /= 2;
        coefficients[v] = (2 * tri) as f64 / (d * (d - 1)) as f64;
    }
    span.field("vertices", num_vertices);
    Ok(coefficients)
}

/// Number of values common to two sorted slices.
fn sorted_intersection(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected_weighted(edges: &[(u64, u64, u64)]) -> EdgeTable {
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(a, b, w) in edges {
            arcs.push((a, b, w));
            arcs.push((b, a, w));
        }
        EdgeTable::from_weighted_arcs(arcs)
    }

    #[test]
    fn sssp_takes_cheapest_path() {
        // 0-1 (2.0), 1-2 (0.5), 0-2 (4.0): the two-hop path wins.
        let t = undirected_weighted(&[
            (0, 1, 2_000_000),
            (1, 2, 500_000),
            (0, 2, 4_000_000),
            (2, 3, 1_500_000),
        ]);
        let dist = sssp(&t, 4, Some(0), &RunContext::unbounded()).unwrap();
        assert_eq!(dist, vec![0, 2_000_000, 2_500_000, 4_000_000]);
    }

    #[test]
    fn sssp_unreachable_and_missing_source() {
        let t = undirected_weighted(&[(0, 1, 1_000_000), (3, 4, 1_000_000)]);
        let dist = sssp(&t, 5, Some(0), &RunContext::unbounded()).unwrap();
        assert_eq!(dist[2], INFINITY);
        assert_eq!(dist[3], INFINITY);
        let none = sssp(&t, 5, None, &RunContext::unbounded()).unwrap();
        assert_eq!(none, vec![INFINITY; 5]);
        let oob = sssp(&t, 5, Some(99), &RunContext::unbounded()).unwrap();
        assert_eq!(oob, vec![INFINITY; 5]);
    }

    #[test]
    fn lcc_triangle_plus_tail() {
        // Triangle 0-1-2 with tail 2-3: vertices 0,1 close their only
        // wedge (1.0); 2 closes one of three (1/3); 3 has degree 1 (0).
        let t = undirected_weighted(&[(0, 1, 1), (1, 2, 1), (0, 2, 1), (2, 3, 1)]);
        let lcc = local_clustering(&t, 4, &RunContext::unbounded()).unwrap();
        assert_eq!(lcc[0], 1.0);
        assert_eq!(lcc[1], 1.0);
        assert!((lcc[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(lcc[3], 0.0);
    }

    #[test]
    fn lcc_counts_lookups_via_scan_not_random_access() {
        let t = undirected_weighted(&[(0, 1, 1), (1, 2, 1), (0, 2, 1)]);
        let before = t.lookup_count();
        local_clustering(&t, 3, &RunContext::unbounded()).unwrap();
        assert_eq!(t.lookup_count(), before); // Pure scan: no point lookups.
    }

    #[test]
    fn sssp_span_reports_settled_count() {
        use graphalytics_core::trace::Tracer;
        use std::sync::Arc;

        let t = undirected_weighted(&[(0, 1, 1), (1, 2, 1)]);
        let tracer = Arc::new(Tracer::new());
        let ctx = RunContext::unbounded().with_tracer(Arc::clone(&tracer));
        sssp(&t, 3, Some(0), &ctx).unwrap();
        let spans = tracer.finished_spans();
        let op = spans.iter().find(|s| s.name == "virtuoso.sssp").unwrap();
        assert_eq!(op.field("settled").and_then(|f| f.as_i64()), Some(3));
    }
}
