//! # graphalytics-columnar
//!
//! A compressed column store with a partitioned transitive traversal
//! operator — the OpenLink Virtuoso stand-in for the paper's §3.4 "BFS on
//! a DBMS" experiment.
//!
//! * [`column`] — blockwise FOR/delta bit-packed u64 columns with vectored
//!   decompression;
//! * [`table`] — the sorted `sp_edge` table with block-index random
//!   lookups;
//! * [`transitive`] — the partitioned-hash-table transitive operator with
//!   an exchange stage and a per-phase CPU profile;
//! * [`sql`] — a parser for the paper's transitive count query;
//! * [`analytics`] — driver-side SSSP and LCC queries over the table;
//! * [`platform`] — the [`VirtuosoPlatform`] harness adapter (BFS, SSSP,
//!   and LCC; other kernels are unsupported, like the paper's driver).

pub mod analytics;
pub mod column;
pub mod platform;
pub mod sql;
pub mod table;
pub mod transitive;

pub use column::Column;
pub use platform::{VirtuosoConfig, VirtuosoPlatform};
pub use table::EdgeTable;
pub use transitive::{transitive_closure, TransitiveProfile};
